(* Tests for Fp_core: placements, metrics, the MILP formulation of the
   paper's equations (2)-(8), the warm-start heuristic, successive
   augmentation, known-topology LP optimization, compaction, and the
   re-insertion refinement. *)

module Rect = Fp_geometry.Rect
module Skyline = Fp_geometry.Skyline
module Module_def = Fp_netlist.Module_def
module Net = Fp_netlist.Net
module Netlist = Fp_netlist.Netlist
module Generator = Fp_netlist.Generator
module BB = Fp_milp.Branch_bound
open Fp_core

let checkf msg = Alcotest.check (Alcotest.float 1e-5) msg
let rect x y w h = Rect.make ~x ~y ~w ~h

let placed ?(rotated = false) id r =
  { Placement.module_id = id; rect = r; envelope = r; rotated }

(* ----------------------------- placement ---------------------------- *)

let test_placement_add_find () =
  let pl = Placement.empty ~chip_width:10. in
  let pl = Placement.add pl (placed 1 (rect 0. 0. 2. 3.)) in
  let pl = Placement.add pl (placed 0 (rect 2. 0. 2. 5.)) in
  Alcotest.(check int) "count" 2 (Placement.num_placed pl);
  checkf "height" 5. pl.Placement.height;
  Alcotest.(check bool) "sorted by id" true
    (List.map (fun p -> p.Placement.module_id) pl.Placement.placed = [ 0; 1 ]);
  Alcotest.(check bool) "find" true (Placement.find pl 1 <> None);
  Alcotest.(check bool) "find missing" true (Placement.find pl 9 = None)

let test_placement_duplicate () =
  let pl = Placement.add (Placement.empty ~chip_width:5.) (placed 0 (rect 0. 0. 1. 1.)) in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Placement.add: module 0 already placed") (fun () ->
      ignore (Placement.add pl (placed 0 (rect 2. 2. 1. 1.))))

let test_placement_valid_detects_overlap () =
  let pl =
    Placement.empty ~chip_width:10.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 3. 3.))
    |> Fun.flip Placement.add (placed 1 (rect 2. 2. 3. 3.))
  in
  Alcotest.(check bool) "overlap detected" true
    (Result.is_error (Placement.valid pl))

let test_placement_valid_detects_out_of_chip () =
  let pl =
    Placement.add (Placement.empty ~chip_width:2.) (placed 0 (rect 1. 0. 3. 1.))
  in
  Alcotest.(check bool) "escape detected" true
    (Result.is_error (Placement.valid pl))

let test_placement_valid_ok_abutting () =
  let pl =
    Placement.empty ~chip_width:10.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 3. 3.))
    |> Fun.flip Placement.add (placed 1 (rect 3. 0. 3. 3.))
  in
  Alcotest.(check bool) "abutting ok" true (Placement.valid pl = Ok ())

let test_placement_pin_position () =
  let pl = Placement.add (Placement.empty ~chip_width:10.)
      (placed 0 (rect 1. 1. 4. 2.)) in
  let p = Placement.pin_position pl ~module_id:0 Net.Right in
  checkf "pin x" 5. p.Fp_geometry.Point.x;
  checkf "pin y" 2. p.Fp_geometry.Point.y

(* ------------------------------ metrics ----------------------------- *)

let two_module_nl () =
  let mods =
    [ Module_def.rigid ~id:0 ~name:"a" ~w:4. ~h:2.;
      Module_def.rigid ~id:1 ~name:"b" ~w:2. ~h:2. ]
  in
  let nets =
    [ Net.make ~name:"n"
        [ { Net.module_id = 0; side = Net.Right };
          { Net.module_id = 1; side = Net.Left } ] ]
  in
  Netlist.create ~name:"two" mods nets

let test_metrics_utilization () =
  let nl = two_module_nl () in
  let pl =
    Placement.empty ~chip_width:6.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 4. 2.))
    |> Fun.flip Placement.add (placed 1 (rect 4. 0. 2. 2.))
  in
  (* Chip 6 x 2 = 12; modules 8 + 4 = 12 -> 100 %. *)
  checkf "utilization" 1. (Metrics.utilization nl pl);
  checkf "bbox utilization" 1. (Metrics.utilization_bbox nl pl)

let test_metrics_hpwl () =
  let nl = two_module_nl () in
  let pl =
    Placement.empty ~chip_width:10.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 4. 2.))
    |> Fun.flip Placement.add (placed 1 (rect 6. 0. 2. 2.))
  in
  (* Pins: right of a = (4,1); left of b = (6,1) -> HPWL = 2. *)
  checkf "hpwl" 2. (Metrics.hpwl nl pl);
  (* Unplaced module: net skipped. *)
  let partial = Placement.add (Placement.empty ~chip_width:10.)
      (placed 0 (rect 0. 0. 4. 2.)) in
  checkf "partial hpwl" 0. (Metrics.hpwl nl partial)

(* ---------------------------- formulation --------------------------- *)

let solve_built ?(params = BB.default_params) built =
  BB.solve ~params built.Formulation.model

let test_formulation_single_rigid () =
  (* One 4x2 module in a width-4 strip: optimal height 2 (no rotation
     needed; rotated it would not fit). *)
  let def = Module_def.rigid ~id:0 ~name:"m" ~w:4. ~h:2. in
  let built =
    Formulation.build ~chip_width:4. ~height_bound:10.
      [ Formulation.plain_item def ]
  in
  match (solve_built built).BB.best with
  | Some (sol, obj) ->
    checkf "height 2" 2. obj;
    let envelope, silicon, rotated = (Formulation.extract built sol).(0) in
    Alcotest.(check bool) "not rotated" false rotated;
    checkf "w" 4. silicon.Rect.w;
    Alcotest.(check bool) "envelope = silicon" true
      (Rect.equal envelope silicon)
  | None -> Alcotest.fail "no solution"

let test_formulation_rotation_helps () =
  (* A 6x2 module in a width-2 strip only fits rotated: height 6. *)
  let def = Module_def.rigid ~id:0 ~name:"m" ~w:6. ~h:2. in
  let built =
    Formulation.build ~chip_width:2. ~height_bound:20.
      [ Formulation.plain_item def ]
  in
  match (solve_built built).BB.best with
  | Some (sol, obj) ->
    checkf "height 6" 6. obj;
    let _, silicon, rotated = (Formulation.extract built sol).(0) in
    Alcotest.(check bool) "rotated" true rotated;
    checkf "silicon w" 2. silicon.Rect.w
  | None -> Alcotest.fail "no solution"

let test_formulation_rotation_disabled () =
  let def = Module_def.rigid ~id:0 ~name:"m" ~w:6. ~h:2. in
  Alcotest.check_raises "too wide without rotation"
    (Invalid_argument
       "Formulation.build: item 0 (m) wider than the chip (6 > 2)") (fun () ->
      ignore
        (Formulation.build ~chip_width:2. ~height_bound:20.
           ~allow_rotation:false
           [ Formulation.plain_item def ]))

let test_formulation_two_rigid_side_by_side () =
  (* Two 2x3 modules in a width-4 strip: best is side by side, height 3
     (or rotated pair stacked 2+2=4 -> side-by-side wins). *)
  let d1 = Module_def.rigid ~id:0 ~name:"a" ~w:2. ~h:3. in
  let d2 = Module_def.rigid ~id:1 ~name:"b" ~w:2. ~h:3. in
  let built =
    Formulation.build ~chip_width:4. ~height_bound:12.
      [ Formulation.plain_item d1; Formulation.plain_item d2 ]
  in
  match (solve_built built).BB.best with
  | Some (_, obj) -> checkf "height 3" 3. obj
  | None -> Alcotest.fail "no solution"

let test_formulation_stacking_forced () =
  (* Width 2, two 2x3 modules: must stack -> height 6. *)
  let d1 = Module_def.rigid ~id:0 ~name:"a" ~w:2. ~h:3. in
  let d2 = Module_def.rigid ~id:1 ~name:"b" ~w:2. ~h:3. in
  let built =
    Formulation.build ~chip_width:2. ~height_bound:12. ~allow_rotation:false
      [ Formulation.plain_item d1; Formulation.plain_item d2 ]
  in
  match (solve_built built).BB.best with
  | Some (sol, obj) ->
    checkf "height 6" 6. obj;
    let r = Formulation.extract built sol in
    let _, s0, _ = r.(0) and _, s1, _ = r.(1) in
    Alcotest.(check bool) "no overlap" false (Rect.overlaps s0 s1)
  | None -> Alcotest.fail "no solution"

let test_formulation_obstacle () =
  (* A full-width obstacle of height 5; a 2x2 module must go above it. *)
  let def = Module_def.rigid ~id:0 ~name:"m" ~w:2. ~h:2. in
  let built =
    Formulation.build ~chip_width:4. ~height_bound:12.
      ~fixed:[ rect 0. 0. 4. 5. ]
      [ Formulation.plain_item def ]
  in
  (* Geometric presolve should have eliminated every binary: only the
     "above" relation is possible. *)
  Alcotest.(check int) "no integer variables" 0
    (Fp_milp.Model.num_integer_vars built.Formulation.model);
  match (solve_built built).BB.best with
  | Some (sol, obj) ->
    checkf "height 7" 7. obj;
    let _, silicon, _ = (Formulation.extract built sol).(0) in
    Alcotest.(check bool) "above the obstacle" true (silicon.Rect.y >= 5. -. 1e-6)
  | None -> Alcotest.fail "no solution"

let test_formulation_pocket_obstacle () =
  (* Obstacle occupying x in [0,3] up to height 4 in a width-5 strip: a
     2x2 module fits beside it at y=0 -> height stays 4. *)
  let def = Module_def.rigid ~id:0 ~name:"m" ~w:2. ~h:2. in
  let built =
    Formulation.build ~chip_width:5. ~height_bound:12.
      ~fixed:[ rect 0. 0. 3. 4. ]
      [ Formulation.plain_item def ]
  in
  match (solve_built built).BB.best with
  | Some (sol, obj) ->
    checkf "height stays 4" 4. obj;
    let _, silicon, _ = (Formulation.extract built sol).(0) in
    Alcotest.(check bool) "beside the obstacle" true
      (silicon.Rect.x >= 3. -. 1e-6)
  | None -> Alcotest.fail "no solution"

let test_formulation_flexible_secant_reshapes () =
  (* Flexible area 8, aspect [0.5, 2]: widths in [2, 4].  Strip width 2:
     must take w = 2, h = 4.  Secant reserves a bit more than 4. *)
  let def =
    Module_def.flexible ~id:0 ~name:"f" ~area:8. ~min_aspect:0.5 ~max_aspect:2.
  in
  let built =
    Formulation.build ~chip_width:2. ~height_bound:20.
      ~linearization:Formulation.Secant
      [ Formulation.plain_item def ]
  in
  match (solve_built built).BB.best with
  | Some (sol, obj) ->
    let envelope, silicon, _ = (Formulation.extract built sol).(0) in
    checkf "silicon w" 2. silicon.Rect.w;
    checkf "silicon h = S/w" 4. silicon.Rect.h;
    Alcotest.(check bool) "reserved >= true height" true
      (envelope.Rect.h >= 4. -. 1e-6);
    Alcotest.(check bool) "secant overestimates between endpoints" true
      (obj >= 4. -. 1e-6)
  | None -> Alcotest.fail "no solution"

let test_formulation_flexible_exact_at_endpoints () =
  (* At dw = 0 both linearizations are exact: strip width 4 admits
     w_max = 4, h = 2. *)
  List.iter
    (fun lin ->
      let def =
        Module_def.flexible ~id:0 ~name:"f" ~area:8. ~min_aspect:0.5
          ~max_aspect:2.
      in
      let built =
        Formulation.build ~chip_width:4. ~height_bound:20. ~linearization:lin
          [ Formulation.plain_item def ]
      in
      match (solve_built built).BB.best with
      | Some (_, obj) -> checkf "height 2" 2. obj
      | None -> Alcotest.fail "no solution")
    [ Formulation.Secant; Formulation.Tangent ]

let test_formulation_tangent_underestimates () =
  (* Tangent at w_max: at dw > 0 the linearized height is below the true
     hyperbola, so the reported envelope must be the hull. *)
  let def =
    Module_def.flexible ~id:0 ~name:"f" ~area:8. ~min_aspect:0.5 ~max_aspect:2.
  in
  let built =
    Formulation.build ~chip_width:2. ~height_bound:20.
      ~linearization:Formulation.Tangent
      [ Formulation.plain_item def ]
  in
  match (solve_built built).BB.best with
  | Some (sol, _) ->
    let envelope, silicon, _ = (Formulation.extract built sol).(0) in
    checkf "true silicon height" 4. silicon.Rect.h;
    Alcotest.(check bool) "hull contains silicon" true
      (Rect.contains_rect ~outer:envelope ~inner:silicon)
  | None -> Alcotest.fail "no solution"

let test_formulation_envelope_margins () =
  (* A 2x2 module with margins (1,1,1,1) in a width-4 strip: envelope is
     4x4, silicon centered. *)
  let def = Module_def.rigid ~id:0 ~name:"m" ~w:2. ~h:2. in
  let built =
    Formulation.build ~chip_width:4. ~height_bound:20.
      [ { Formulation.def; margins = (1., 1., 1., 1.) } ]
  in
  match (solve_built built).BB.best with
  | Some (sol, obj) ->
    checkf "height 4" 4. obj;
    let envelope, silicon, _ = (Formulation.extract built sol).(0) in
    checkf "env w" 4. envelope.Rect.w;
    checkf "sil w" 2. silicon.Rect.w;
    checkf "sil offset x" (envelope.Rect.x +. 1.) silicon.Rect.x;
    checkf "sil offset y" (envelope.Rect.y +. 1.) silicon.Rect.y
  | None -> Alcotest.fail "no solution"

let test_formulation_wire_objective () =
  (* Two modules connected by a net; wire weight pulls them together.
     Strip wide enough that area alone is indifferent. *)
  let nl = two_module_nl () in
  let items =
    [ Formulation.plain_item (Netlist.module_at nl 0);
      Formulation.plain_item (Netlist.module_at nl 1) ]
  in
  let built =
    Formulation.build ~chip_width:12. ~height_bound:8.
      ~objective:(Formulation.Min_height_plus_wire 0.05)
      ~wire_context:(nl, Placement.empty ~chip_width:12., [| 0; 1 |])
      items
  in
  Alcotest.(check bool) "nets captured" true
    (List.length built.Formulation.net_infos = 1);
  match (solve_built built).BB.best with
  | Some (sol, _) ->
    let r = Formulation.extract built sol in
    let _, s0, _ = r.(0) and _, s1, _ = r.(1) in
    Alcotest.(check bool) "no overlap" false (Rect.overlaps s0 s1);
    (* Modules should abut (pin-to-pin distance ~ 0). *)
    let gap =
      Float.max 0.
        (Float.max s0.Rect.x s1.Rect.x
         -. Float.min (Rect.x_max s0) (Rect.x_max s1))
    in
    Alcotest.(check bool) "pulled together" true (gap < 1.5)
  | None -> Alcotest.fail "no solution"

let test_formulation_net_length_bound () =
  (* Same two connected modules, but instead of a wire objective a hard
     HPWL bound on the net: the MILP must place them adjacently even
     though the area objective is indifferent. *)
  let nl = two_module_nl () in
  let items =
    [ Formulation.plain_item (Netlist.module_at nl 0);
      Formulation.plain_item (Netlist.module_at nl 1) ]
  in
  let built =
    Formulation.build ~chip_width:12. ~height_bound:8.
      ~wire_context:(nl, Placement.empty ~chip_width:12., [| 0; 1 |])
      ~net_length_bound:(fun _ -> Some 1.0)
      items
  in
  match (solve_built built).BB.best with
  | Some (sol, _) ->
    let r = Formulation.extract built sol in
    let _, s0, _ = r.(0) and _, s1, _ = r.(1) in
    (* Pins: right of module 0 and left of module 1; bound 1.0 forces
       them within HPWL 1. *)
    let p0 = Rect.side_midpoint s0 `Right and p1 = Rect.side_midpoint s1 `Left in
    let hp = Fp_geometry.Point.manhattan p0 p1 in
    Alcotest.(check bool) "net length respected" true (hp <= 1.0 +. 1e-5)
  | None -> Alcotest.fail "no solution"

let test_formulation_net_length_bound_infeasible () =
  (* A bound no placement can meet makes the step infeasible. *)
  let nl = two_module_nl () in
  let items =
    [ Formulation.plain_item (Netlist.module_at nl 0);
      Formulation.plain_item (Netlist.module_at nl 1) ]
  in
  let built =
    Formulation.build ~chip_width:12. ~height_bound:8.
      ~wire_context:(nl, Placement.empty ~chip_width:12., [| 0; 1 |])
      ~net_length_bound:(fun _ -> Some (-1.))
      items
  in
  let outcome = solve_built built in
  Alcotest.(check bool) "infeasible" true
    (outcome.BB.status = BB.Infeasible || outcome.BB.best = None)

let test_formulation_wire_requires_context () =
  let def = Module_def.rigid ~id:0 ~name:"m" ~w:1. ~h:1. in
  Alcotest.check_raises "wire without context"
    (Invalid_argument "Formulation.build: wire objective requires ~wire_context")
    (fun () ->
      ignore
        (Formulation.build ~chip_width:4. ~height_bound:4.
           ~objective:(Formulation.Min_height_plus_wire 0.1)
           [ Formulation.plain_item def ]))

let test_formulation_area_cut_bounds_lp () =
  (* The LP root bound must be at least total area / width. *)
  let defs =
    List.init 3 (fun i ->
        Module_def.rigid ~id:i ~name:(Printf.sprintf "m%d" i) ~w:2. ~h:2.)
  in
  let built =
    Formulation.build ~chip_width:4. ~height_bound:20.
      (List.map Formulation.plain_item defs)
  in
  let outcome = solve_built built in
  Alcotest.(check bool) "root bound >= area/W" true
    (outcome.BB.root_bound >= (12. /. 4.) -. 1e-6)

let test_rel_of_geometry () =
  let a = rect 0. 0. 2. 2. in
  Alcotest.(check bool) "left" true
    (Formulation.rel_of_geometry a (rect 2. 0. 2. 2.) = Some Formulation.Rel_left);
  Alcotest.(check bool) "above" true
    (Formulation.rel_of_geometry (rect 0. 2. 2. 2.) a = Some Formulation.Rel_above);
  Alcotest.(check bool) "overlap none" true
    (Formulation.rel_of_geometry a (rect 1. 1. 2. 2.) = None)

let test_assign_warm_feasible () =
  (* Warm assignment of a hand-made placement must satisfy the model. *)
  let d1 = Module_def.rigid ~id:0 ~name:"a" ~w:2. ~h:3. in
  let d2 = Module_def.rigid ~id:1 ~name:"b" ~w:2. ~h:3. in
  let built =
    Formulation.build ~chip_width:4. ~height_bound:12.
      ~fixed:[ rect 0. 0. 4. 1. ]
      [ Formulation.plain_item d1; Formulation.plain_item d2 ]
  in
  let env k = if k = 0 then rect 0. 1. 2. 3. else rect 2. 1. 2. 3. in
  let sol = Formulation.assign_warm built env ~rotated:(fun _ -> false) in
  checkf "feasible" 0.
    (Fp_lp.Lp_problem.constraint_violation
       (Fp_milp.Model.problem built.Formulation.model)
       sol);
  Alcotest.(check bool) "integral" true
    (Fp_milp.Model.integral built.Formulation.model sol)

let test_assign_warm_rejects_overlap () =
  let d1 = Module_def.rigid ~id:0 ~name:"a" ~w:2. ~h:3. in
  let d2 = Module_def.rigid ~id:1 ~name:"b" ~w:2. ~h:3. in
  let built =
    Formulation.build ~chip_width:4. ~height_bound:12.
      [ Formulation.plain_item d1; Formulation.plain_item d2 ]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Formulation.assign_warm built
            (fun _ -> rect 0. 0. 2. 3.)
            ~rotated:(fun _ -> false));
       false
     with Invalid_argument _ -> true)

(* ------------------------ formulation modes ------------------------- *)

(* Solve a built formulation the way production does: propagation and
   the lazy pool ride the strengthened modes. *)
let solve_mode built =
  let params =
    { BB.default_params with
      BB.propagate = built.Formulation.formulation <> Formulation.Basic }
  in
  BB.solve ~params
    ?cutter:(Formulation.separator built)
    ~cut_pool:built.Formulation.cut_candidates built.Formulation.model

let test_modes_agree_on_optimum =
  (* Basic, tight and cuts are the same integer program in three
     relaxations: on any instance they must all certify optimal and
     agree on the optimal height. *)
  QCheck.Test.make ~name:"formulation modes agree on the optimum" ~count:20
    QCheck.(list_of_size (Gen.return 3) (pair (int_range 1 4) (int_range 1 4)))
    (fun dims ->
      QCheck.assume (dims <> []);
      let items =
        List.mapi
          (fun i (w, h) ->
            Formulation.plain_item
              (Module_def.rigid ~id:i ~name:(Printf.sprintf "m%d" i)
                 ~w:(float_of_int w) ~h:(float_of_int h)))
          dims
      in
      let solve mode =
        let built =
          Formulation.build ~chip_width:6. ~height_bound:30. ~check:true
            ~formulation:mode items
        in
        match solve_mode built with
        | { BB.status = BB.Optimal; best = Some (_, obj); _ } -> obj
        | _ -> QCheck.Test.fail_report "mode did not reach Optimal"
      in
      let b = solve Formulation.Basic in
      let t = solve Formulation.Tight in
      let c = solve Formulation.Cuts in
      Float.abs (b -. t) <= 1e-5 && Float.abs (b -. c) <= 1e-5)

let test_per_pair_m_monotone () =
  (* Per-pair M starts at most at the direction cap and only shrinks
     when bounds tighten further. *)
  let items =
    List.init 2 (fun i ->
        Formulation.plain_item
          (Module_def.rigid ~id:i ~name:(Printf.sprintf "m%d" i) ~w:2. ~h:3.))
  in
  let built =
    Formulation.build ~chip_width:6. ~height_bound:20.
      ~formulation:Formulation.Tight items
  in
  Alcotest.(check bool) "sep rows recorded" true
    (built.Formulation.sep_rows <> []);
  List.iter
    (fun sr ->
      Alcotest.(check bool) "M <= cap" true
        (sr.Formulation.sr_m <= sr.Formulation.sr_cap +. 1e-9))
    built.Formulation.sep_rows;
  let before =
    List.map (fun sr -> sr.Formulation.sr_m) built.Formulation.sep_rows
  in
  let prob = Fp_milp.Model.problem built.Formulation.model in
  let h = built.Formulation.height in
  Fp_lp.Lp_problem.set_bounds prob h ~lb:(Fp_lp.Lp_problem.var_lb prob h)
    ~ub:8.;
  ignore (Formulation.retighten built : int);
  List.iter2
    (fun m0 sr ->
      Alcotest.(check bool) "M only shrinks" true
        (sr.Formulation.sr_m <= m0 +. 1e-9))
    before built.Formulation.sep_rows

let test_cut_stack_restored () =
  (* After a cuts-mode solve every appended cut row is truncated again
     (stack discipline), and the optimum matches basic mode even when
     the solve needed basis refactorizations along the way. *)
  let items =
    List.init 4 (fun i ->
        Formulation.plain_item
          (Module_def.rigid ~id:i ~name:(Printf.sprintf "m%d" i)
             ~w:(float_of_int (1 + (i mod 3)))
             ~h:(float_of_int (1 + ((i + 1) mod 3)))))
  in
  let built =
    Formulation.build ~chip_width:5. ~height_bound:30.
      ~formulation:Formulation.Cuts items
  in
  let prob = Fp_milp.Model.problem built.Formulation.model in
  let rows_before = Fp_lp.Lp_problem.num_constrs prob in
  let out = solve_mode built in
  Alcotest.(check int) "cut rows truncated" rows_before
    (Fp_lp.Lp_problem.num_constrs prob);
  Alcotest.(check bool) "pool compiled" true
    (built.Formulation.cut_candidates <> []);
  let basic =
    solve_mode
      (Formulation.build ~chip_width:5. ~height_bound:30.
         ~formulation:Formulation.Basic items)
  in
  match (out.BB.best, basic.BB.best) with
  | Some (_, a), Some (_, b) -> checkf "same optimum as basic" b a
  | _ -> Alcotest.fail "expected optima from both modes"

let test_augment_modes_match_height () =
  (* End-to-end: the full augmentation flow reaches the same committed
     height whatever the formulation mode (same greedy decisions, since
     every step is solved to optimality on this size). *)
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 6; seed = 11 }
  in
  let run fm =
    (Augment.run
       ~config:{ Augment.default_config with Augment.formulation = fm }
       nl)
      .Augment.placement.Placement.height
  in
  let b = run Formulation.Basic in
  checkf "tight height" b (run Formulation.Tight);
  checkf "cuts height" b (run Formulation.Cuts)

let test_augment_cuts_jobs_deterministic () =
  (* Parallel replay stays bit-identical in cuts mode: frontier tasks
     carry propagated bounds and active cut rows. *)
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 9; seed = 31 }
  in
  let run jobs =
    (Augment.run
       ~config:
         { Augment.default_config with
           Augment.group_size = 3; jobs; formulation = Formulation.Cuts }
       nl)
      .Augment.placement
  in
  let ref_pl = run 1 in
  let pl = run 2 in
  checkf "height jobs=2" ref_pl.Placement.height pl.Placement.height;
  Alcotest.(check bool) "identical rects" true
    (Placement.rects pl = Placement.rects ref_pl)

(* ---------------------------- warm start ---------------------------- *)

let test_warm_start_no_overlap () =
  let items =
    Array.of_list
      (List.map Formulation.plain_item
         [
           Module_def.rigid ~id:0 ~name:"a" ~w:4. ~h:2.;
           Module_def.rigid ~id:1 ~name:"b" ~w:3. ~h:3.;
           Module_def.rigid ~id:2 ~name:"c" ~w:2. ~h:2.;
           Module_def.flexible ~id:3 ~name:"f" ~area:6. ~min_aspect:0.5
             ~max_aspect:2.;
         ])
  in
  let sky = Skyline.create ~width:8. in
  let choices =
    Warm_start.place_group ~skyline:sky ~allow_rotation:true
      ~linearization:Formulation.Secant items
  in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if j > i then
            Alcotest.(check bool) "no overlap" false
              (Rect.overlaps a.Warm_start.envelope b.Warm_start.envelope))
        choices)
    choices;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "inside strip" true
        (c.Warm_start.envelope.Rect.x >= -1e-6
         && Rect.x_max c.Warm_start.envelope <= 8. +. 1e-6))
    choices

let test_warm_start_respects_skyline () =
  let items =
    [| Formulation.plain_item (Module_def.rigid ~id:0 ~name:"a" ~w:4. ~h:1.) |]
  in
  let sky =
    Skyline.add_rect (Skyline.create ~width:4.) (rect 0. 0. 4. 5.)
  in
  let choices =
    Warm_start.place_group ~skyline:sky ~allow_rotation:false
      ~linearization:Formulation.Secant items
  in
  Alcotest.(check bool) "above profile" true
    (choices.(0).Warm_start.envelope.Rect.y >= 5. -. 1e-6)

let test_warm_start_too_wide () =
  let items =
    [| Formulation.plain_item (Module_def.rigid ~id:0 ~name:"a" ~w:9. ~h:9.) |]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Warm_start.place_group ~skyline:(Skyline.create ~width:4.)
            ~allow_rotation:false ~linearization:Formulation.Secant items);
       false
     with Invalid_argument _ -> true)

(* ----------------------------- augment ------------------------------ *)

let small_cfg =
  {
    Augment.default_config with
    Augment.group_size = 3;
    milp = { Augment.default_config.Augment.milp with BB.node_limit = 600 };
  }

let test_augment_places_everything () =
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 8; seed = 21 }
  in
  let res = Augment.run ~config:small_cfg nl in
  let pl = res.Augment.placement in
  Alcotest.(check int) "all placed" 8 (Placement.num_placed pl);
  Alcotest.(check bool) "valid" true (Placement.valid pl = Ok ());
  Alcotest.(check bool) "some utilization" true
    (Metrics.utilization nl pl > 0.5);
  Alcotest.(check int) "steps" 3 (List.length res.Augment.steps)

let test_augment_deterministic () =
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 7; seed = 22 }
  in
  let a = Augment.run ~config:small_cfg nl in
  let b = Augment.run ~config:small_cfg nl in
  checkf "same height" a.Augment.placement.Placement.height
    b.Augment.placement.Placement.height

let test_augment_jobs_deterministic () =
  (* With the default deterministic MILP mode, the floorplan must be
     bit-identical whatever the worker count. *)
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 9; seed = 31 }
  in
  let run jobs =
    (Augment.run ~config:{ small_cfg with Augment.jobs } nl).Augment.placement
  in
  let ref_pl = run 1 in
  List.iter
    (fun jobs ->
      let pl = run jobs in
      checkf
        (Printf.sprintf "height at jobs=%d" jobs)
        ref_pl.Placement.height pl.Placement.height;
      Alcotest.(check bool)
        (Printf.sprintf "identical rects at jobs=%d" jobs)
        true
        (Placement.rects pl = Placement.rects ref_pl))
    [ 2; 4 ]

let test_augment_candidates_concurrent () =
  (* candidates > 1 changes the greedy search, but serial and parallel
     candidate evaluation must agree, and the stats must record how many
     candidates were tried. *)
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 8; seed = 32 }
  in
  let run jobs =
    Augment.run
      ~config:{ small_cfg with Augment.candidates = 3; jobs }
      nl
  in
  let serial = run 1 and parallel = run 3 in
  Alcotest.(check int) "all placed" 8
    (Placement.num_placed serial.Augment.placement);
  Alcotest.(check bool) "valid" true
    (Placement.valid serial.Augment.placement = Ok ());
  checkf "serial = parallel height" serial.Augment.placement.Placement.height
    parallel.Augment.placement.Placement.height;
  Alcotest.(check bool) "identical rects" true
    (Placement.rects serial.Augment.placement
    = Placement.rects parallel.Augment.placement);
  let first = List.hd serial.Augment.steps in
  Alcotest.(check int) "first step tried 3 candidates" 3
    first.Augment.candidates_evaluated

let test_augment_rejects_bad_parallel_config () =
  let nl = two_module_nl () in
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Augment.run: jobs < 1")
    (fun () ->
      ignore (Augment.run ~config:{ small_cfg with Augment.jobs = 0 } nl));
  Alcotest.check_raises "candidates < 1"
    (Invalid_argument "Augment.run: candidates < 1") (fun () ->
      ignore
        (Augment.run ~config:{ small_cfg with Augment.candidates = 0 } nl))

let test_augment_chip_width_respected () =
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 6; seed = 23 }
  in
  let cfg = { small_cfg with Augment.chip_width = Some 120. } in
  let res = Augment.run ~config:cfg nl in
  checkf "width as configured" 120. res.Augment.placement.Placement.chip_width;
  Alcotest.(check bool) "valid" true (Placement.valid res.Augment.placement = Ok ())

let test_augment_envelopes_add_margins () =
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 6; seed = 24 }
  in
  let cfg =
    { small_cfg with
      Augment.envelope =
        Some { Augment.pitch_h = 0.3; pitch_v = 0.3; share = 0.5 } }
  in
  let res = Augment.run ~config:cfg nl in
  let pl = res.Augment.placement in
  Alcotest.(check bool) "valid" true (Placement.valid pl = Ok ());
  (* At least one module has a strictly larger envelope than silicon. *)
  Alcotest.(check bool) "margins present" true
    (List.exists
       (fun p ->
         Rect.area p.Placement.envelope > Rect.area p.Placement.rect +. 1e-6)
       pl.Placement.placed)

let test_augment_covering_ablation () =
  (* With covering off the result must still be valid; integer counts per
     step are at least as large as with covering on (Theorem 2's point). *)
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 9; seed = 25 }
  in
  let with_cover = Augment.run ~config:small_cfg nl in
  let without =
    Augment.run ~config:{ small_cfg with Augment.use_covering = false } nl
  in
  Alcotest.(check bool) "both valid" true
    (Placement.valid with_cover.Augment.placement = Ok ()
     && Placement.valid without.Augment.placement = Ok ());
  let ints r =
    List.fold_left (fun a s -> a + s.Augment.num_integer_vars) 0
      r.Augment.steps
  in
  Alcotest.(check bool) "covering never uses more integer vars" true
    (ints with_cover <= ints without)

let test_augment_empty_instance () =
  let nl = Netlist.create ~name:"empty" [] [] in
  Alcotest.check_raises "empty" (Invalid_argument "Augment.run: empty instance")
    (fun () -> ignore (Augment.run nl))

let test_items_of_group_margins () =
  let nl = two_module_nl () in
  let cfg =
    { Augment.default_config with
      Augment.envelope = Some { Augment.pitch_h = 1.; pitch_v = 1.; share = 1. } }
  in
  match Augment.items_of_group cfg nl [ 0 ] with
  | [ item ] ->
    let _, r, _, _ = item.Formulation.margins in
    (* Module 0 has one pin on its right side. *)
    checkf "right margin = 1 pin * pitch" 1. r
  | _ -> Alcotest.fail "expected one item"

(* ----------------------------- topology ----------------------------- *)

let test_topology_improves_or_keeps () =
  (* Hand-made wasteful placement: stacked with gaps. *)
  let nl = two_module_nl () in
  let pl =
    Placement.empty ~chip_width:6.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 4. 2.))
    |> Fun.flip Placement.add (placed 1 (rect 0. 5. 2. 2.))
  in
  let pl2, stats = Topology.optimize nl pl in
  Alcotest.(check int) "no integer vars" 0 stats.Topology.num_integer_vars;
  Alcotest.(check bool) "height reduced" true
    (pl2.Placement.height <= pl.Placement.height +. 1e-6);
  checkf "optimal stack" 4. pl2.Placement.height;
  Alcotest.(check bool) "valid" true (Placement.valid pl2 = Ok ())

let test_topology_rejects_invalid () =
  let nl = two_module_nl () in
  let pl =
    Placement.empty ~chip_width:6.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 4. 2.))
    |> Fun.flip Placement.add (placed 1 (rect 1. 1. 2. 2.))
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Topology.optimize nl pl);
       false
     with Invalid_argument _ -> true)

let test_topology_flexible_reshape () =
  (* A flexible module stacked over a rigid one: topology LP may reshape
     it to reduce height while keeping the topology. *)
  let mods =
    [ Module_def.rigid ~id:0 ~name:"a" ~w:4. ~h:2.;
      Module_def.flexible ~id:1 ~name:"f" ~area:8. ~min_aspect:0.5
        ~max_aspect:2. ]
  in
  let nl = Netlist.create ~name:"mix" mods [] in
  let pl =
    Placement.empty ~chip_width:4.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 4. 2.))
    (* Flexible placed at its narrowest: w=2, h=4. *)
    |> Fun.flip Placement.add (placed 1 (rect 0. 2. 2. 4.))
  in
  let pl2, _ = Topology.optimize nl pl in
  (* Widening the flexible to w=4 gives h=2: total height 4 < 6. *)
  Alcotest.(check bool) "height reduced" true (pl2.Placement.height < 5.);
  Alcotest.(check bool) "valid" true (Placement.valid pl2 = Ok ())

(* ------------------------------ compact ----------------------------- *)

let test_compact_drops_floaters () =
  let pl =
    Placement.empty ~chip_width:10.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 3. 2.))
    |> Fun.flip Placement.add (placed 1 (rect 0. 6. 3. 2.))  (* floating *)
    |> Fun.flip Placement.add (placed 2 (rect 5. 3. 2. 2.))  (* floating *)
  in
  let pl2 = Compact.vertical pl in
  checkf "height" 4. pl2.Placement.height;
  Alcotest.(check bool) "valid" true (Placement.valid pl2 = Ok ());
  (match Placement.find pl2 2 with
  | Some p -> checkf "dropped to floor" 0. p.Placement.rect.Rect.y
  | None -> Alcotest.fail "module 2 missing");
  checkf "gap area zero" 0. (Compact.gap_area pl2)

let test_compact_idempotent () =
  let pl =
    Placement.empty ~chip_width:10.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 3. 2.))
    |> Fun.flip Placement.add (placed 1 (rect 1. 2. 3. 2.))
  in
  let a = Compact.vertical pl in
  let b = Compact.vertical a in
  checkf "idempotent height" a.Placement.height b.Placement.height

let test_compact_preserves_x () =
  let pl =
    Placement.add (Placement.empty ~chip_width:10.) (placed 0 (rect 4. 7. 2. 2.))
  in
  let pl2 = Compact.vertical pl in
  match Placement.find pl2 0 with
  | Some p ->
    checkf "x preserved" 4. p.Placement.rect.Rect.x;
    checkf "y dropped" 0. p.Placement.rect.Rect.y
  | None -> Alcotest.fail "missing"

(* ------------------------------ refine ------------------------------ *)

let test_refine_improves_bad_placement () =
  (* Tall narrow stack with room beside it: re-insertion should drop the
     top module next to the stack. *)
  let mods =
    [ Module_def.rigid ~id:0 ~name:"a" ~w:3. ~h:3.;
      Module_def.rigid ~id:1 ~name:"b" ~w:3. ~h:3.;
      Module_def.rigid ~id:2 ~name:"c" ~w:3. ~h:3. ]
  in
  let nl = Netlist.create ~name:"stack" mods [] in
  let pl =
    Placement.empty ~chip_width:9.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 3. 3.))
    |> Fun.flip Placement.add (placed 1 (rect 0. 3. 3. 3.))
    |> Fun.flip Placement.add (placed 2 (rect 0. 6. 3. 3.))
  in
  let pl2, report = Refine.reinsert_top nl pl in
  Alcotest.(check bool) "improved" true
    (pl2.Placement.height < pl.Placement.height -. 1e-6);
  Alcotest.(check bool) "rounds counted" true (report.Refine.rounds_improved >= 1);
  Alcotest.(check bool) "valid" true (Placement.valid pl2 = Ok ());
  checkf "reports heights" pl.Placement.height report.Refine.height_before

let test_refine_keeps_good_placement () =
  let mods =
    [ Module_def.rigid ~id:0 ~name:"a" ~w:4. ~h:2.;
      Module_def.rigid ~id:1 ~name:"b" ~w:4. ~h:2. ]
  in
  let nl = Netlist.create ~name:"tight" mods [] in
  let pl =
    Placement.empty ~chip_width:4.
    |> Fun.flip Placement.add (placed 0 (rect 0. 0. 4. 2.))
    |> Fun.flip Placement.add (placed 1 (rect 0. 2. 4. 2.))
  in
  let pl2, _ = Refine.reinsert_top nl pl in
  checkf "unchanged height" 4. pl2.Placement.height;
  Alcotest.(check bool) "valid" true (Placement.valid pl2 = Ok ())

(* --------------------- end-to-end property test --------------------- *)

let test_augment_always_valid =
  QCheck.Test.make ~name:"augment produces valid floorplans" ~count:8
    QCheck.(int_range 4 9)
    (fun seed ->
      let nl =
        Generator.generate
          { Generator.default_config with
            Generator.num_modules = 5 + (seed mod 3); seed }
      in
      let cfg =
        { small_cfg with
          Augment.milp = { small_cfg.Augment.milp with BB.node_limit = 200 } }
      in
      let res = Augment.run ~config:cfg nl in
      Placement.valid res.Augment.placement = Ok ()
      && Placement.num_placed res.Augment.placement = Netlist.num_modules nl)

let () =
  Alcotest.run "fp_core"
    [
      ( "placement",
        [
          Alcotest.test_case "add/find" `Quick test_placement_add_find;
          Alcotest.test_case "duplicate" `Quick test_placement_duplicate;
          Alcotest.test_case "detects overlap" `Quick
            test_placement_valid_detects_overlap;
          Alcotest.test_case "detects escape" `Quick
            test_placement_valid_detects_out_of_chip;
          Alcotest.test_case "abutting ok" `Quick test_placement_valid_ok_abutting;
          Alcotest.test_case "pin position" `Quick test_placement_pin_position;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "utilization" `Quick test_metrics_utilization;
          Alcotest.test_case "hpwl" `Quick test_metrics_hpwl;
        ] );
      ( "formulation",
        [
          Alcotest.test_case "single rigid" `Quick test_formulation_single_rigid;
          Alcotest.test_case "rotation helps" `Quick
            test_formulation_rotation_helps;
          Alcotest.test_case "rotation disabled" `Quick
            test_formulation_rotation_disabled;
          Alcotest.test_case "side by side" `Quick
            test_formulation_two_rigid_side_by_side;
          Alcotest.test_case "stacking forced" `Quick
            test_formulation_stacking_forced;
          Alcotest.test_case "obstacle" `Quick test_formulation_obstacle;
          Alcotest.test_case "pocket obstacle" `Quick
            test_formulation_pocket_obstacle;
          Alcotest.test_case "flexible secant" `Quick
            test_formulation_flexible_secant_reshapes;
          Alcotest.test_case "flexible endpoints" `Quick
            test_formulation_flexible_exact_at_endpoints;
          Alcotest.test_case "tangent hull" `Quick
            test_formulation_tangent_underestimates;
          Alcotest.test_case "envelope margins" `Quick
            test_formulation_envelope_margins;
          Alcotest.test_case "wire objective" `Quick
            test_formulation_wire_objective;
          Alcotest.test_case "wire needs context" `Quick
            test_formulation_wire_requires_context;
          Alcotest.test_case "net length bound" `Quick
            test_formulation_net_length_bound;
          Alcotest.test_case "net length infeasible" `Quick
            test_formulation_net_length_bound_infeasible;
          Alcotest.test_case "area cut" `Quick test_formulation_area_cut_bounds_lp;
          Alcotest.test_case "rel of geometry" `Quick test_rel_of_geometry;
          Alcotest.test_case "warm assignment feasible" `Quick
            test_assign_warm_feasible;
          Alcotest.test_case "warm rejects overlap" `Quick
            test_assign_warm_rejects_overlap;
        ] );
      ( "modes",
        [
          QCheck_alcotest.to_alcotest test_modes_agree_on_optimum;
          Alcotest.test_case "per-pair M monotone" `Quick
            test_per_pair_m_monotone;
          Alcotest.test_case "cut stack restored" `Quick test_cut_stack_restored;
          Alcotest.test_case "augment modes match height" `Slow
            test_augment_modes_match_height;
          Alcotest.test_case "cuts jobs deterministic" `Slow
            test_augment_cuts_jobs_deterministic;
        ] );
      ( "warm_start",
        [
          Alcotest.test_case "no overlap" `Quick test_warm_start_no_overlap;
          Alcotest.test_case "respects skyline" `Quick
            test_warm_start_respects_skyline;
          Alcotest.test_case "too wide" `Quick test_warm_start_too_wide;
        ] );
      ( "augment",
        [
          Alcotest.test_case "places everything" `Quick
            test_augment_places_everything;
          Alcotest.test_case "deterministic" `Quick test_augment_deterministic;
          Alcotest.test_case "jobs deterministic" `Quick
            test_augment_jobs_deterministic;
          Alcotest.test_case "concurrent candidates" `Quick
            test_augment_candidates_concurrent;
          Alcotest.test_case "rejects bad parallel config" `Quick
            test_augment_rejects_bad_parallel_config;
          Alcotest.test_case "chip width respected" `Quick
            test_augment_chip_width_respected;
          Alcotest.test_case "envelopes add margins" `Quick
            test_augment_envelopes_add_margins;
          Alcotest.test_case "covering ablation" `Quick
            test_augment_covering_ablation;
          Alcotest.test_case "empty instance" `Quick test_augment_empty_instance;
          Alcotest.test_case "items of group margins" `Quick
            test_items_of_group_margins;
          QCheck_alcotest.to_alcotest test_augment_always_valid;
        ] );
      ( "topology",
        [
          Alcotest.test_case "improves or keeps" `Quick
            test_topology_improves_or_keeps;
          Alcotest.test_case "rejects invalid" `Quick test_topology_rejects_invalid;
          Alcotest.test_case "flexible reshape" `Quick
            test_topology_flexible_reshape;
        ] );
      ( "compact",
        [
          Alcotest.test_case "drops floaters" `Quick test_compact_drops_floaters;
          Alcotest.test_case "idempotent" `Quick test_compact_idempotent;
          Alcotest.test_case "preserves x" `Quick test_compact_preserves_x;
        ] );
      ( "refine",
        [
          Alcotest.test_case "improves bad placement" `Quick
            test_refine_improves_bad_placement;
          Alcotest.test_case "keeps good placement" `Quick
            test_refine_keeps_good_placement;
        ] );
    ]
