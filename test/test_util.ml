(* Tests for Fp_util: the deterministic RNG, the stats helpers, and the
   binary heap. *)

module Rng = Fp_util.Rng
module Stats = Fp_util.Stats
module Heap = Fp_util.Heap
module Pool = Fp_util.Pool

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* ------------------------------- Rng ------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool)
    "different seeds diverge" false
    (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "0 <= v < 3.5" true (v >= 0. && v < 3.5)
  done

let test_rng_int_coverage () =
  (* All residues of a small modulus should appear. *)
  let rng = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  Alcotest.(check bool)
    "child differs from parent" false
    (Rng.next_int64 parent = Rng.next_int64 child)

let test_rng_split_n_deterministic () =
  (* Same parent seed must yield the same child streams — the property
     that keeps parallel runs reproducible. *)
  let children seed =
    Rng.split_n (Rng.create seed) 4 |> Array.map Rng.next_int64
  in
  check
    Alcotest.(array int64)
    "same seed, same children" (children 17) (children 17)

let test_rng_split_n_pairwise_distinct () =
  let kids = Rng.split_n (Rng.create 23) 8 in
  let outs = Array.map Rng.next_int64 kids in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "children %d and %d diverge" i j)
              false (a = b))
        outs)
    outs

let test_rng_split_n_advances_parent () =
  let a = Rng.create 31 and b = Rng.create 31 in
  ignore (Rng.split_n a 3);
  Alcotest.(check bool)
    "parent advanced by derivation" false
    (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_split_n_edge_cases () =
  check Alcotest.int "zero children" 0
    (Array.length (Rng.split_n (Rng.create 1) 0));
  Alcotest.check_raises "negative n"
    (Invalid_argument "Rng.split_n: negative count") (fun () ->
      ignore (Rng.split_n (Rng.create 1) (-1)))

let test_rng_copy () =
  let a = Rng.create 13 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy resumes identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

(* ------------------------------ Stats ------------------------------ *)

let test_mean () = checkf "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ])

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (Stats.mean []))

let test_stddev () =
  checkf "constant stddev" 0. (Stats.stddev [ 3.; 3.; 3. ]);
  checkf "population stddev of [0;2]" 1. (Stats.stddev [ 0.; 2. ]);
  checkf "singleton" 0. (Stats.stddev [ 42. ])

let test_linear_fit_exact () =
  let fit = Stats.linear_fit [ (1., 3.); (2., 5.); (3., 7.) ] in
  checkf "slope" 2. fit.Stats.slope;
  checkf "intercept" 1. fit.Stats.intercept;
  checkf "r2" 1. fit.Stats.r2

let test_linear_fit_flat () =
  let fit = Stats.linear_fit [ (1., 4.); (2., 4.); (3., 4.) ] in
  checkf "flat slope" 0. fit.Stats.slope;
  checkf "flat r2" 1. fit.Stats.r2

let test_linear_fit_degenerate () =
  Alcotest.check_raises "same x"
    (Invalid_argument "Stats.linear_fit: degenerate x values") (fun () ->
      ignore (Stats.linear_fit [ (1., 1.); (1., 2.) ]))

(* ------------------------------ Heap ------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k k) [ 5.; 1.; 4.; 2.; 3. ];
  let order = List.init 5 (fun _ -> Option.get (Heap.pop h) |> snd) in
  check Alcotest.(list (float 0.)) "pops ascending" [ 1.; 2.; 3.; 4.; 5. ] order

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_heap_duplicates () =
  let h = Heap.create () in
  Heap.push h 1. "a";
  Heap.push h 1. "b";
  Heap.push h 0. "c";
  Alcotest.(check string) "min first" "c" (snd (Option.get (Heap.pop h)));
  Alcotest.(check int) "two left" 2 (Heap.size h)

let test_heap_random_sorts =
  QCheck.Test.make ~name:"heap sorts any float list" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun floats ->
      let h = Heap.create () in
      List.iter (fun f -> Heap.push h f f) floats;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare floats)

let test_heap_vs_oracle =
  (* Random interleaving of pushes and pops, checked move-by-move against
     a sorted-list oracle. *)
  let op =
    QCheck.(
      oneof
        [
          map (fun f -> `Push f) (float_bound_exclusive 100.);
          always `Pop;
        ])
  in
  QCheck.Test.make ~name:"heap matches sorted-list oracle" ~count:300
    (QCheck.list op) (fun ops ->
      let h = Heap.create () in
      let oracle = ref [] in
      List.for_all
        (fun operation ->
          match operation with
          | `Push f ->
            Heap.push h f f;
            oracle := List.merge compare [ f ] !oracle;
            Heap.size h = List.length !oracle
          | `Pop -> (
            match (Heap.pop h, !oracle) with
            | None, [] -> true
            | Some (k, v), x :: rest ->
              oracle := rest;
              k = x && v = x
            | _ -> false))
        ops
      && Heap.size h = List.length !oracle)

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h 3. 3;
  Heap.push h 1. 1;
  Alcotest.(check int) "pop 1" 1 (snd (Option.get (Heap.pop h)));
  Heap.push h 0. 0;
  Heap.push h 2. 2;
  Alcotest.(check int) "pop 0" 0 (snd (Option.get (Heap.pop h)));
  Alcotest.(check int) "pop 2" 2 (snd (Option.get (Heap.pop h)));
  Alcotest.(check int) "pop 3" 3 (snd (Option.get (Heap.pop h)))

(* ------------------------------ Pool ------------------------------- *)

let test_pool_map_correct () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          check Alcotest.int "reported size" jobs (Pool.jobs p);
          let out = Pool.map p ~n:100 (fun ~worker:_ i -> i * i) in
          check
            Alcotest.(array int)
            (Printf.sprintf "squares at jobs=%d" jobs)
            (Array.init 100 (fun i -> i * i))
            out))
    [ 1; 2; 4 ]

let test_pool_worker_ids_in_range () =
  Pool.with_pool ~jobs:4 (fun p ->
      let seen = Array.make 4 false in
      Pool.run p ~n:64 (fun ~worker _ ->
          if worker < 0 || worker >= 4 then
            failwith (Printf.sprintf "worker id %d out of range" worker);
          seen.(worker) <- true);
      Alcotest.(check bool) "worker 0 participates" true seen.(0))

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.check_raises "task failure surfaces" (Failure "task 7")
        (fun () ->
          Pool.run p ~n:16 (fun ~worker:_ i ->
              if i = 7 then failwith "task 7"));
      (* The pool must survive a failed batch. *)
      let out = Pool.map p ~n:8 (fun ~worker:_ i -> i + 1) in
      check Alcotest.(array int) "usable after failure"
        (Array.init 8 (fun i -> i + 1))
        out)

let test_pool_skewed_batch () =
  (* One heavy task next to many trivial ones: stealing must still
     produce every result exactly once. *)
  Pool.with_pool ~jobs:4 (fun p ->
      let out =
        Pool.map p ~n:32 (fun ~worker:_ i ->
            if i = 0 then begin
              let acc = ref 0 in
              for k = 1 to 2_000_000 do
                acc := (!acc * 31) + k
              done;
              ignore !acc
            end;
            i)
      in
      check Alcotest.(array int) "all slots filled once"
        (Array.init 32 Fun.id) out)

let test_pool_reused_across_batches () =
  Pool.with_pool ~jobs:3 (fun p ->
      for round = 1 to 20 do
        let out = Pool.map p ~n:round (fun ~worker:_ i -> i * round) in
        check Alcotest.(array int)
          (Printf.sprintf "round %d" round)
          (Array.init round (fun i -> i * round))
          out
      done)

let test_pool_jobs_clamped () =
  Pool.with_pool ~jobs:0 (fun p ->
      check Alcotest.int "clamped up to 1" 1 (Pool.jobs p));
  Pool.with_pool ~jobs:1000 (fun p ->
      check Alcotest.int "clamped down to 64" 64 (Pool.jobs p))

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~jobs:2 in
  ignore (Pool.map p ~n:4 (fun ~worker:_ i -> i));
  Pool.shutdown p;
  Pool.shutdown p

let () =
  Alcotest.run "fp_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int coverage" `Quick test_rng_int_coverage;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_permutation;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "split_n deterministic" `Quick
            test_rng_split_n_deterministic;
          Alcotest.test_case "split_n pairwise distinct" `Quick
            test_rng_split_n_pairwise_distinct;
          Alcotest.test_case "split_n advances parent" `Quick
            test_rng_split_n_advances_parent;
          Alcotest.test_case "split_n edge cases" `Quick
            test_rng_split_n_edge_cases;
          Alcotest.test_case "copy" `Quick test_rng_copy;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "linear fit exact" `Quick test_linear_fit_exact;
          Alcotest.test_case "linear fit flat" `Quick test_linear_fit_flat;
          Alcotest.test_case "linear fit degenerate" `Quick
            test_linear_fit_degenerate;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          QCheck_alcotest.to_alcotest test_heap_random_sorts;
          QCheck_alcotest.to_alcotest test_heap_vs_oracle;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map correctness" `Quick test_pool_map_correct;
          Alcotest.test_case "worker ids in range" `Quick
            test_pool_worker_ids_in_range;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "skewed batch steals" `Quick
            test_pool_skewed_batch;
          Alcotest.test_case "reused across batches" `Quick
            test_pool_reused_across_batches;
          Alcotest.test_case "jobs clamped" `Quick test_pool_jobs_clamped;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
        ] );
    ]
