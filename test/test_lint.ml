(* Tests for Fp_lint: rule detection on the corpus fixtures (syntactic
   and interprocedural), call-graph resolution, effect-fixpoint
   convergence, finding dedupe, SARIF rendering, baseline
   parsing/matching/drift, and the repo-wide clean-against-baseline
   check. *)

module Finding = Fp_lint.Finding
module Rules = Fp_lint.Rules
module Baseline = Fp_lint.Baseline
module Driver = Fp_lint.Driver
module Callgraph = Fp_lint.Callgraph
module Effects = Fp_lint.Effects
module Sarif = Fp_lint.Sarif
module Typestate = Fp_lint.Typestate

let corpus = "lint_corpus"

let lint ?role name =
  let role = Option.value role ~default:Rules.Lib in
  Driver.lint_file ~role ~root:"." (Filename.concat corpus name)

let rule_names fs =
  List.sort_uniq String.compare
    (List.map (fun f -> Finding.rule_name f.Finding.rule) fs)

let check_rules msg expected fs =
  Alcotest.(check (list string)) msg expected (rule_names fs)

(* ------------------------- corpus: positives ------------------------ *)

let test_sa001_pos () =
  let fs = lint "sa001_pos.ml" in
  check_rules "only SA001" [ "SA001" ] fs;
  Alcotest.(check int) "all four sites" 4 (List.length fs)

let test_sa002_pos () = check_rules "only SA002" [ "SA002" ] (lint "sa002_pos.ml")
let test_sa003_pos () =
  let fs = lint "sa003_pos.ml" in
  check_rules "only SA003" [ "SA003" ] fs;
  Alcotest.(check int) "all three writers" 3 (List.length fs)

let test_sa004_pos () = check_rules "only SA004" [ "SA004" ] (lint "sa004_pos.ml")

let test_sa005_pos () =
  let fs = lint "sa005_pos.ml" in
  (* The two direct mutations stay SA005; the worker-index escape moved
     to the interprocedural escape rule (SA012), which supersedes the
     old syntactic heuristic. *)
  check_rules "SA005 + SA012" [ "SA005"; "SA012" ] fs;
  Alcotest.(check int) "ref + field + worker escape" 3 (List.length fs)

let test_sa006_pos () =
  let fs = lint "sa006_pos.ml" in
  check_rules "only SA006" [ "SA006" ] fs;
  Alcotest.(check int) "both handlers" 2 (List.length fs)

let test_sa007_pos () = check_rules "only SA007" [ "SA007" ] (lint "sa007_pos.ml")
let test_sa008_pos () = check_rules "only SA008" [ "SA008" ] (lint "sa008_pos.ml")

let test_sa000_unparseable () =
  check_rules "SA000 for garbage" [ "SA000" ] (lint "sa000_bad.ml")

(* ------------------ corpus: interprocedural rules ------------------- *)

let test_sa010_pos () =
  let fs = lint "sa010_pos.ml" in
  (* Hashtbl.randomize and read_line sit two helpers below the task:
     no syntactic rule fires on this file — only the transitive effect
     pass sees the taint. *)
  check_rules "only SA010 — old rules are blind here" [ "SA010" ] fs;
  Alcotest.(check int) "rng chain + io chain" 2 (List.length fs)

let test_sa011_pos () =
  let fs = lint "sa011_pos.ml" in
  (* The helper's own handler is SA006 (syntactic, at the handler);
     SA011 adds the task-level view (at the task, one call up). *)
  check_rules "SA006 at the handler, SA011 at the task" [ "SA006"; "SA011" ]
    fs;
  Alcotest.(check int) "one of each" 2 (List.length fs)

let test_sa012_pos () =
  let fs = lint "sa012_pos.ml" in
  check_rules "only SA012" [ "SA012" ] fs;
  Alcotest.(check int) "captured-arg + transitive + local helper" 3
    (List.length fs)

(* --------------------- corpus: typestate rules ---------------------- *)

let msg_contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let some_msg_contains needle fs =
  Alcotest.(check bool)
    ("some finding mentions " ^ needle)
    true
    (List.exists (fun f -> msg_contains ~needle f.Finding.msg) fs)

let test_sa013_pos () =
  let fs = lint "sa013_pos.ml" in
  check_rules "only SA013" [ "SA013" ] fs;
  Alcotest.(check int) "use-after-shutdown + branch leak + skippable" 3
    (List.length fs);
  (* the use-after-shutdown witness composes the two helper summaries
     into one DFA trace, creation through to the offending use. *)
  some_msg_contains "Pool.create" fs;
  some_msg_contains "Sa013_pos.dispatch" fs;
  some_msg_contains "Sa013_pos.submit" fs

let test_sa014_pos () =
  let fs = lint "sa014_pos.ml" in
  check_rules "only SA014" [ "SA014" ] fs;
  Alcotest.(check int) "alias use-after-close + skippable + helper close" 3
    (List.length fs);
  (* the alias trace walks through the second name, the helper trace
     through the callee's summary. *)
  some_msg_contains "output_string:13" fs;
  some_msg_contains "Sa014_pos.finish" fs

let test_sa015_pos () =
  let fs = lint "sa015_pos.ml" in
  check_rules "only SA015" [ "SA015" ] fs;
  Alcotest.(check int) "journal sink + commit-named sink" 2 (List.length fs);
  some_msg_contains "commit_result" fs;
  some_msg_contains "Abort.check" fs

let test_sa016_pos () =
  let fs = lint "sa016_pos.ml" in
  check_rules "only SA016" [ "SA016" ] fs;
  Alcotest.(check int) "direct + through helper summary" 2 (List.length fs);
  some_msg_contains "Rng.split_n:6 -> Rng.int:7" fs;
  some_msg_contains "Sa016_pos.draw" fs

let test_sa017_pos () =
  let fs = lint "sa017_pos.ml" in
  check_rules "only SA017" [ "SA017" ] fs;
  Alcotest.(check int) "inline RMW + let-bound RMW" 2 (List.length fs);
  some_msg_contains "Atomic.get:10 -> Atomic.set:11" fs

(* ------------------------- corpus: negatives ------------------------ *)

let neg name () = check_rules (name ^ " clean") [] (lint name)

(* ------------------------------ roles ------------------------------- *)

let test_roles_gate_rules () =
  (* stdout writes and raw float comparisons are lib-only concerns. *)
  check_rules "SA003 off outside lib" [] (lint ~role:Rules.Bench "sa003_pos.ml");
  check_rules "SA001 off outside lib" [] (lint ~role:Rules.Bin "sa001_pos.ml");
  (* the domain-safety and exit-code rules follow the code everywhere. *)
  check_rules "SA005/SA012 on in bench" [ "SA005"; "SA012" ]
    (lint ~role:Rules.Bench "sa005_pos.ml");
  check_rules "SA008 on in examples" [ "SA008" ]
    (lint ~role:Rules.Examples "sa008_pos.ml");
  (* replay taint is a lib concern; exception swallowing below a pool
     task matters everywhere — at Bench the syntactic SA006 is off, so
     SA011 is the only thing standing between Abort and the void. *)
  check_rules "SA010 off outside lib" []
    (lint ~role:Rules.Bench "sa010_pos.ml");
  check_rules "SA011 alone in bench" [ "SA011" ]
    (lint ~role:Rules.Bench "sa011_pos.ml");
  check_rules "SA012 on in bin" [ "SA012" ]
    (lint ~role:Rules.Bin "sa012_pos.ml")

(* ----------------- call graph and effect inference ------------------ *)

let parse src = Parse.implementation (Lexing.from_string src)

let graph sources =
  let cg = Callgraph.of_sources (List.map (fun (p, s) -> (p, parse s)) sources)
  in
  (cg, Effects.infer cg)

let callees cg q =
  List.sort_uniq String.compare
    (List.map (fun c -> c.Callgraph.callee) (Callgraph.calls cg q))

let test_callgraph_resolution () =
  let cg, summaries =
    graph
      [
        ("lib/core/alpha.ml", "let tick () = Unix.gettimeofday ()");
        ( "lib/core/beta.ml",
          "open Alpha\n\
           let go () = tick ()\n\
           module A = Alpha\n\
           let go2 () = A.tick ()\n\
           let go3 () = Fp_core.Alpha.tick ()" );
      ]
  in
  (* cross-module resolution through open, module alias, and the
     Fp_* dune-wrapper prefix all land on the same node. *)
  List.iter
    (fun q ->
      Alcotest.(check (list string))
        (q ^ " resolves through to Alpha.tick") [ "Alpha.tick" ] (callees cg q);
      Alcotest.(check bool)
        (q ^ " inherits the clock effect")
        true
        (Effects.has Effects.Clock (Effects.summary_of summaries q)))
    [ "Beta.go"; "Beta.go2"; "Beta.go3" ];
  (* and the witness chain names the whole path, primitive included. *)
  Alcotest.(check (list string))
    "witness chain"
    [ "Beta.go"; "Alpha.tick"; "Unix.gettimeofday" ]
    (Effects.chain summaries "Beta.go" Effects.Clock)

let test_fixpoint_cycle_converges () =
  let _, summaries =
    graph
      [
        ( "lib/core/looper.ml",
          "let rec ping n = if n = 0 then Unix.gettimeofday () else pong (n - 1)\n\
           and pong n = ping n" );
      ]
  in
  (* mutual recursion: the fixpoint must terminate and both nodes end
     at the same lattice point. *)
  List.iter
    (fun q ->
      Alcotest.(check bool) (q ^ " has clock") true
        (Effects.has Effects.Clock (Effects.summary_of summaries q)))
    [ "Looper.ping"; "Looper.pong" ]

let test_mut_param_propagation () =
  let _, summaries =
    graph
      [ ("lib/core/mut.ml", "let set r v = r := v\nlet via r = set r 1") ]
  in
  Alcotest.(check (list int))
    "set mutates its first param" [ 0 ]
    (Effects.summary_of summaries "Mut.set").Effects.mut_params;
  (* the mutation flows through the call site into via's own param. *)
  Alcotest.(check (list int))
    "via inherits the mutation" [ 0 ]
    (Effects.summary_of summaries "Mut.via").Effects.mut_params

let test_infer_deterministic_and_bounded () =
  let sources =
    [
      ("lib/core/alpha.ml", "let tick () = Unix.gettimeofday ()");
      ("lib/core/beta.ml", "open Alpha\nlet go () = tick ()");
    ]
  in
  let cg, s1 = graph sources in
  let s2 = Effects.infer cg in
  (* re-running the fixpoint reproduces the same lattice point for
     every definition (idempotence — the widening bound is top). *)
  List.iter
    (fun q ->
      Alcotest.(check bool) (q ^ " stable") true
        (Effects.equal (Effects.summary_of s1 q) (Effects.summary_of s2 q)))
    (Callgraph.defs_order cg);
  Alcotest.(check int) "top is the full powerset"
    (List.length Effects.all_effects)
    (Effects.Eff_set.cardinal Effects.top)

(* ----------------------- typestate machinery ------------------------ *)

let test_typestate_idempotent () =
  let cg, _ =
    graph
      [
        ( "lib/core/proto.ml",
          "let finish oc = close_out oc\n\
           let go path =\n\
           \  let oc = open_out path in\n\
           \  output_string oc \"x\";\n\
           \  finish oc" );
        ( "lib/core/fan.ml",
          "let seed s = let r = Fp_util.Rng.create s in Fp_util.Rng.split r" );
      ]
  in
  (* re-running the protocol fixpoint reproduces the same summary map
     for every definition — mirrors the Effects idempotence check. *)
  Alcotest.(check bool) "protocol summaries stable" true
    (Typestate.equal (Typestate.infer cg) (Typestate.infer cg))

let test_typestate_branch_merge () =
  (* one branch closes the channel, the other does not; the states meet
     at the join, and the use after the merge must still fire from the
     closed configuration. *)
  let src =
    "let branchy path flag =\n\
     \  let oc = open_out path in\n\
     \  (if flag then close_out oc);\n\
     \  output_string oc \"x\"\n"
  in
  let cg, _ = graph [ ("lib/core/branchy.ml", src) ] in
  let t = Typestate.infer cg in
  let fs = Typestate.check ~cg ~t ~file:"lib/core/branchy.ml" in
  check_rules "only SA014" [ "SA014" ] fs;
  match fs with
  | [ f ] ->
    Alcotest.(check int) "fires at the post-merge use" 4 f.Finding.line;
    Alcotest.(check bool) "trace passes through the closing branch" true
      (msg_contains ~needle:"close_out:3" f.Finding.msg)
  | fs -> Alcotest.failf "expected exactly 1 finding, got %d" (List.length fs)

(* ------------------------------ dedupe ------------------------------ *)

let test_dedupe () =
  let f1 = Finding.v ~file:"lib/a.ml" ~line:10 Finding.SA005 "direct" in
  let f2 = Finding.v ~file:"lib/a.ml" ~line:10 Finding.SA012 "interproc" in
  let f3 = Finding.v ~file:"lib/a.ml" ~line:20 Finding.SA012 "elsewhere" in
  let d = Finding.dedupe [ f3; f2; f1; f1 ] in
  (* same file:line — the earlier (more specific) rule wins; exact
     duplicates collapse; other lines are untouched. *)
  Alcotest.(check (list string))
    "earlier rule wins at a shared line"
    [ Finding.to_string f1; Finding.to_string f3 ]
    (List.map Finding.to_string d)

(* ------------------------------ SARIF ------------------------------- *)

let test_sarif_render () =
  let f = Finding.v ~file:"lib/a.ml" ~line:10 Finding.SA010 "taint" in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
    in
    go 0
  in
  let doc = Sarif.render [ f ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle doc))
    [
      {|"version":"2.1.0"|};
      {|"name":"fp_lint"|};
      {|"ruleId":"SA010"|};
      {|"uri":"lib/a.ml"|};
      {|"uriBaseId":"SRCROOT"|};
      {|"startLine":10|};
    ];
  Alcotest.(check bool) "no suppressions when unbaselined" false
    (contains ~needle:{|"suppressions"|} doc);
  let entry =
    {
      Baseline.e_file = "lib/a.ml";
      e_line = Some 10;
      e_rule = Finding.SA010;
      e_just = "sanctioned timing site";
      e_src_line = 1;
    }
  in
  let doc = Sarif.render ~baseline:[ entry ] [ f ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("baselined: contains " ^ needle) true
        (contains ~needle doc))
    [ {|"suppressions"|}; {|"kind":"external"|}; {|sanctioned timing site|} ]

(* ----------------------------- baseline ----------------------------- *)

let entry file line rule just =
  {
    Baseline.e_file = file;
    e_line = line;
    e_rule = rule;
    e_just = just;
    e_src_line = 1;
  }

let test_baseline_parse () =
  let text =
    "# comment\n\
     \n\
     lib/lp/basis.ml SA001 -- LU kernel\n\
     lib/milp/branch_bound.ml:211 SA004 -- deadline enforcement\n"
  in
  match Baseline.parse ~path:"b" text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok [ a; b ] ->
    Alcotest.(check string) "file" "lib/lp/basis.ml" a.Baseline.e_file;
    Alcotest.(check (option int)) "whole file" None a.Baseline.e_line;
    Alcotest.(check (option int)) "pinned" (Some 211) b.Baseline.e_line;
    Alcotest.(check string) "justification" "deadline enforcement"
      b.Baseline.e_just
  | Ok es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)

let expect_parse_error what text =
  match Baseline.parse ~path:"b" text with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: parse unexpectedly succeeded" what

let test_baseline_rejects () =
  expect_parse_error "missing justification" "lib/a.ml SA001\n";
  expect_parse_error "empty justification" "lib/a.ml SA001 -- \n";
  expect_parse_error "unknown rule" "lib/a.ml SA999 -- why\n";
  expect_parse_error "SA000 not baselineable" "lib/a.ml SA000 -- why\n";
  expect_parse_error "malformed" "just some words\n"

let test_baseline_missing_is_error () =
  match Baseline.load "lint_corpus/no_such.baseline" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline silently became empty"

let test_baseline_apply () =
  let f1 = Finding.v ~file:"lib/a.ml" ~line:10 Finding.SA001 "x"
  and f2 = Finding.v ~file:"lib/a.ml" ~line:20 Finding.SA001 "y"
  and f3 = Finding.v ~file:"lib/b.ml" ~line:5 Finding.SA004 "z" in
  (* Whole-file entry covers every line of its rule in that file. *)
  let v =
    Baseline.apply [ entry "lib/a.ml" None Finding.SA001 "j" ] [ f1; f2; f3 ]
  in
  Alcotest.(check (list string)) "f3 unbaselined"
    [ Finding.to_string f3 ]
    (List.map Finding.to_string v.Baseline.unbaselined);
  Alcotest.(check int) "no stale" 0 (List.length v.Baseline.stale);
  (* Line-pinned entry covers exactly its line. *)
  let v =
    Baseline.apply
      [ entry "lib/a.ml" (Some 10) Finding.SA001 "j" ]
      [ f1; f2 ]
  in
  Alcotest.(check (list string)) "f2 left"
    [ Finding.to_string f2 ]
    (List.map Finding.to_string v.Baseline.unbaselined);
  (* An entry covering nothing is stale (drift check). *)
  let v = Baseline.apply [ entry "lib/gone.ml" (Some 3) Finding.SA001 "j" ] [] in
  Alcotest.(check int) "stale entry surfaces" 1 (List.length v.Baseline.stale)

let test_baseline_never_covers_sa000 () =
  let f = Finding.v ~file:"lib/a.ml" ~line:1 Finding.SA000 "unparseable" in
  let v = Baseline.apply [ entry "lib/a.ml" None Finding.SA000 "j" ] [ f ] in
  Alcotest.(check int) "SA000 stays" 1 (List.length v.Baseline.unbaselined)

(* --------------------- repo-wide baseline match --------------------- *)

(* The suite runs from _build/default/test; walk up to the real source
   root (the first ancestor holding dune-project and lint.baseline whose
   path is outside _build) and lint it exactly as `dune build @lint`
   does.  Skipped when no such root exists (e.g. opam sandbox). *)
let find_repo_root () =
  let rec up dir =
    let has f = Sys.file_exists (Filename.concat dir f) in
    let in_build =
      List.mem "_build" (String.split_on_char '/' dir)
    in
    if (not in_build) && has "dune-project" && has "lint.baseline" then
      Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let test_repo_clean_against_baseline () =
  match find_repo_root () with
  | None -> ()
  | Some root -> (
    let findings = Driver.lint_tree ~root () in
    match Baseline.load (Filename.concat root "lint.baseline") with
    | Error e -> Alcotest.failf "baseline: %s" e
    | Ok entries ->
      let v = Baseline.apply entries findings in
      Alcotest.(check (list string)) "no unbaselined findings" []
        (List.map Finding.to_string v.Baseline.unbaselined);
      Alcotest.(check int) "no stale baseline entries" 0
        (List.length v.Baseline.stale))

let test_repo_baseline_has_justifications () =
  match find_repo_root () with
  | None -> ()
  | Some root -> (
    match Baseline.load (Filename.concat root "lint.baseline") with
    | Error e -> Alcotest.failf "baseline: %s" e
    | Ok entries ->
      Alcotest.(check bool) "baseline is non-trivial" true
        (List.length entries > 0);
      List.iter
        (fun (e : Baseline.entry) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s has a real justification" e.Baseline.e_file)
            true
            (String.length (String.trim e.Baseline.e_just) >= 10))
        entries)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_repo_effects_summary_fresh () =
  match find_repo_root () with
  | None -> ()
  | Some root ->
    let committed = Filename.concat root "docs/effects-summary.md" in
    if not (Sys.file_exists committed) then
      Alcotest.fail "docs/effects-summary.md missing — regenerate with \
                     fp_lint --effects"
    else
      Alcotest.(check string)
        "committed effects summary matches --effects (regenerate with \
         `dune exec bin/fp_lint.exe -- --root . --effects`)"
        (Driver.effects_report ~root ())
        (read_file committed)

let () =
  Alcotest.run "fp_lint"
    [
      ( "corpus-pos",
        [
          Alcotest.test_case "SA001 float compares" `Quick test_sa001_pos;
          Alcotest.test_case "SA002 ambient Random" `Quick test_sa002_pos;
          Alcotest.test_case "SA003 stdout writes" `Quick test_sa003_pos;
          Alcotest.test_case "SA004 wall clock" `Quick test_sa004_pos;
          Alcotest.test_case "SA005 racy closures" `Quick test_sa005_pos;
          Alcotest.test_case "SA006 swallowing catch-alls" `Quick
            test_sa006_pos;
          Alcotest.test_case "SA007 unknown fault site" `Quick test_sa007_pos;
          Alcotest.test_case "SA008 literal exit" `Quick test_sa008_pos;
          Alcotest.test_case "SA000 unparseable" `Quick test_sa000_unparseable;
          Alcotest.test_case "SA010 transitive replay taint" `Quick
            test_sa010_pos;
          Alcotest.test_case "SA011 swallowed below the task" `Quick
            test_sa011_pos;
          Alcotest.test_case "SA013 pool lifecycle" `Quick test_sa013_pos;
          Alcotest.test_case "SA014 channel lifecycle" `Quick test_sa014_pos;
          Alcotest.test_case "SA015 unpolled commit sinks" `Quick
            test_sa015_pos;
          Alcotest.test_case "SA016 sample-after-split" `Quick test_sa016_pos;
          Alcotest.test_case "SA017 atomic get/set RMW" `Quick test_sa017_pos;
          Alcotest.test_case "SA012 escaping mutable captures" `Quick
            test_sa012_pos;
        ] );
      ( "corpus-neg",
        [
          Alcotest.test_case "tolerance compares" `Quick (neg "sa001_neg.ml");
          Alcotest.test_case "seeded rng" `Quick (neg "sa002_neg.ml");
          Alcotest.test_case "logging" `Quick (neg "sa003_neg.ml");
          Alcotest.test_case "logical clocks" `Quick (neg "sa004_neg.ml");
          Alcotest.test_case "synchronized closures" `Quick (neg "sa005_neg.ml");
          Alcotest.test_case "containment handlers" `Quick (neg "sa006_neg.ml");
          Alcotest.test_case "catalogued fault site" `Quick (neg "sa007_neg.ml");
          Alcotest.test_case "mapped exit codes" `Quick (neg "sa008_neg.ml");
          Alcotest.test_case "pure helper chains" `Quick (neg "sa010_neg.ml");
          Alcotest.test_case "contained handlers below tasks" `Quick
            (neg "sa011_neg.ml");
          Alcotest.test_case "blessed capture shapes" `Quick
            (neg "sa012_neg.ml");
          Alcotest.test_case "with_pool and protected teardown" `Quick
            (neg "sa013_neg.ml");
          Alcotest.test_case "protected channels" `Quick (neg "sa014_neg.ml");
          Alcotest.test_case "polled commit sinks" `Quick (neg "sa015_neg.ml");
          Alcotest.test_case "sample-before-split" `Quick (neg "sa016_neg.ml");
          Alcotest.test_case "CAS and fetch_and_add" `Quick
            (neg "sa017_neg.ml");
        ] );
      ( "roles",
        [ Alcotest.test_case "role gating" `Quick test_roles_gate_rules ] );
      ( "interproc",
        [
          Alcotest.test_case "cross-module resolution" `Quick
            test_callgraph_resolution;
          Alcotest.test_case "cycle convergence" `Quick
            test_fixpoint_cycle_converges;
          Alcotest.test_case "mut-param propagation" `Quick
            test_mut_param_propagation;
          Alcotest.test_case "fixpoint idempotent, top bounded" `Quick
            test_infer_deterministic_and_bounded;
          Alcotest.test_case "dedupe keeps the earlier rule" `Quick
            test_dedupe;
          Alcotest.test_case "sarif rendering" `Quick test_sarif_render;
        ] );
      ( "typestate",
        [
          Alcotest.test_case "summaries idempotent" `Quick
            test_typestate_idempotent;
          Alcotest.test_case "DFA branch merge" `Quick
            test_typestate_branch_merge;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "parse" `Quick test_baseline_parse;
          Alcotest.test_case "rejects bad entries" `Quick test_baseline_rejects;
          Alcotest.test_case "missing file is an error" `Quick
            test_baseline_missing_is_error;
          Alcotest.test_case "apply/stale" `Quick test_baseline_apply;
          Alcotest.test_case "SA000 uncoverable" `Quick
            test_baseline_never_covers_sa000;
        ] );
      ( "repo",
        [
          Alcotest.test_case "clean against baseline" `Quick
            test_repo_clean_against_baseline;
          Alcotest.test_case "justifications present" `Quick
            test_repo_baseline_has_justifications;
          Alcotest.test_case "effects summary fresh" `Quick
            test_repo_effects_summary_fresh;
        ] );
    ]
