(* Tests for Fp_lint: rule detection on the corpus fixtures, baseline
   parsing/matching/drift, and the repo-wide clean-against-baseline
   check. *)

module Finding = Fp_lint.Finding
module Rules = Fp_lint.Rules
module Baseline = Fp_lint.Baseline
module Driver = Fp_lint.Driver

let corpus = "lint_corpus"

let lint ?role name =
  let role = Option.value role ~default:Rules.Lib in
  Driver.lint_file ~role ~root:"." (Filename.concat corpus name)

let rule_names fs =
  List.sort_uniq String.compare
    (List.map (fun f -> Finding.rule_name f.Finding.rule) fs)

let check_rules msg expected fs =
  Alcotest.(check (list string)) msg expected (rule_names fs)

(* ------------------------- corpus: positives ------------------------ *)

let test_sa001_pos () =
  let fs = lint "sa001_pos.ml" in
  check_rules "only SA001" [ "SA001" ] fs;
  Alcotest.(check int) "all four sites" 4 (List.length fs)

let test_sa002_pos () = check_rules "only SA002" [ "SA002" ] (lint "sa002_pos.ml")
let test_sa003_pos () =
  let fs = lint "sa003_pos.ml" in
  check_rules "only SA003" [ "SA003" ] fs;
  Alcotest.(check int) "all three writers" 3 (List.length fs)

let test_sa004_pos () = check_rules "only SA004" [ "SA004" ] (lint "sa004_pos.ml")

let test_sa005_pos () =
  let fs = lint "sa005_pos.ml" in
  check_rules "only SA005" [ "SA005" ] fs;
  Alcotest.(check int) "ref + field + worker escape" 3 (List.length fs)

let test_sa006_pos () =
  let fs = lint "sa006_pos.ml" in
  check_rules "only SA006" [ "SA006" ] fs;
  Alcotest.(check int) "both handlers" 2 (List.length fs)

let test_sa007_pos () = check_rules "only SA007" [ "SA007" ] (lint "sa007_pos.ml")
let test_sa008_pos () = check_rules "only SA008" [ "SA008" ] (lint "sa008_pos.ml")

let test_sa000_unparseable () =
  check_rules "SA000 for garbage" [ "SA000" ] (lint "sa000_bad.ml")

(* ------------------------- corpus: negatives ------------------------ *)

let neg name () = check_rules (name ^ " clean") [] (lint name)

(* ------------------------------ roles ------------------------------- *)

let test_roles_gate_rules () =
  (* stdout writes and raw float comparisons are lib-only concerns. *)
  check_rules "SA003 off outside lib" [] (lint ~role:Rules.Bench "sa003_pos.ml");
  check_rules "SA001 off outside lib" [] (lint ~role:Rules.Bin "sa001_pos.ml");
  (* the domain-safety and exit-code rules follow the code everywhere. *)
  check_rules "SA005 on in bench" [ "SA005" ]
    (lint ~role:Rules.Bench "sa005_pos.ml");
  check_rules "SA008 on in examples" [ "SA008" ]
    (lint ~role:Rules.Examples "sa008_pos.ml")

(* ----------------------------- baseline ----------------------------- *)

let entry file line rule just =
  {
    Baseline.e_file = file;
    e_line = line;
    e_rule = rule;
    e_just = just;
    e_src_line = 1;
  }

let test_baseline_parse () =
  let text =
    "# comment\n\
     \n\
     lib/lp/basis.ml SA001 -- LU kernel\n\
     lib/milp/branch_bound.ml:211 SA004 -- deadline enforcement\n"
  in
  match Baseline.parse ~path:"b" text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok [ a; b ] ->
    Alcotest.(check string) "file" "lib/lp/basis.ml" a.Baseline.e_file;
    Alcotest.(check (option int)) "whole file" None a.Baseline.e_line;
    Alcotest.(check (option int)) "pinned" (Some 211) b.Baseline.e_line;
    Alcotest.(check string) "justification" "deadline enforcement"
      b.Baseline.e_just
  | Ok es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)

let expect_parse_error what text =
  match Baseline.parse ~path:"b" text with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: parse unexpectedly succeeded" what

let test_baseline_rejects () =
  expect_parse_error "missing justification" "lib/a.ml SA001\n";
  expect_parse_error "empty justification" "lib/a.ml SA001 -- \n";
  expect_parse_error "unknown rule" "lib/a.ml SA999 -- why\n";
  expect_parse_error "SA000 not baselineable" "lib/a.ml SA000 -- why\n";
  expect_parse_error "malformed" "just some words\n"

let test_baseline_apply () =
  let f1 = Finding.v ~file:"lib/a.ml" ~line:10 Finding.SA001 "x"
  and f2 = Finding.v ~file:"lib/a.ml" ~line:20 Finding.SA001 "y"
  and f3 = Finding.v ~file:"lib/b.ml" ~line:5 Finding.SA004 "z" in
  (* Whole-file entry covers every line of its rule in that file. *)
  let v =
    Baseline.apply [ entry "lib/a.ml" None Finding.SA001 "j" ] [ f1; f2; f3 ]
  in
  Alcotest.(check (list string)) "f3 unbaselined"
    [ Finding.to_string f3 ]
    (List.map Finding.to_string v.Baseline.unbaselined);
  Alcotest.(check int) "no stale" 0 (List.length v.Baseline.stale);
  (* Line-pinned entry covers exactly its line. *)
  let v =
    Baseline.apply
      [ entry "lib/a.ml" (Some 10) Finding.SA001 "j" ]
      [ f1; f2 ]
  in
  Alcotest.(check (list string)) "f2 left"
    [ Finding.to_string f2 ]
    (List.map Finding.to_string v.Baseline.unbaselined);
  (* An entry covering nothing is stale (drift check). *)
  let v = Baseline.apply [ entry "lib/gone.ml" (Some 3) Finding.SA001 "j" ] [] in
  Alcotest.(check int) "stale entry surfaces" 1 (List.length v.Baseline.stale)

let test_baseline_never_covers_sa000 () =
  let f = Finding.v ~file:"lib/a.ml" ~line:1 Finding.SA000 "unparseable" in
  let v = Baseline.apply [ entry "lib/a.ml" None Finding.SA000 "j" ] [ f ] in
  Alcotest.(check int) "SA000 stays" 1 (List.length v.Baseline.unbaselined)

(* --------------------- repo-wide baseline match --------------------- *)

(* The suite runs from _build/default/test; walk up to the real source
   root (the first ancestor holding dune-project and lint.baseline whose
   path is outside _build) and lint it exactly as `dune build @lint`
   does.  Skipped when no such root exists (e.g. opam sandbox). *)
let find_repo_root () =
  let rec up dir =
    let has f = Sys.file_exists (Filename.concat dir f) in
    let in_build =
      List.mem "_build" (String.split_on_char '/' dir)
    in
    if (not in_build) && has "dune-project" && has "lint.baseline" then
      Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let test_repo_clean_against_baseline () =
  match find_repo_root () with
  | None -> ()
  | Some root -> (
    let findings = Driver.lint_tree ~root () in
    match Baseline.load (Filename.concat root "lint.baseline") with
    | Error e -> Alcotest.failf "baseline: %s" e
    | Ok entries ->
      let v = Baseline.apply entries findings in
      Alcotest.(check (list string)) "no unbaselined findings" []
        (List.map Finding.to_string v.Baseline.unbaselined);
      Alcotest.(check int) "no stale baseline entries" 0
        (List.length v.Baseline.stale))

let test_repo_baseline_has_justifications () =
  match find_repo_root () with
  | None -> ()
  | Some root -> (
    match Baseline.load (Filename.concat root "lint.baseline") with
    | Error e -> Alcotest.failf "baseline: %s" e
    | Ok entries ->
      Alcotest.(check bool) "baseline is non-trivial" true
        (List.length entries > 0);
      List.iter
        (fun (e : Baseline.entry) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s has a real justification" e.Baseline.e_file)
            true
            (String.length (String.trim e.Baseline.e_just) >= 10))
        entries)

let () =
  Alcotest.run "fp_lint"
    [
      ( "corpus-pos",
        [
          Alcotest.test_case "SA001 float compares" `Quick test_sa001_pos;
          Alcotest.test_case "SA002 ambient Random" `Quick test_sa002_pos;
          Alcotest.test_case "SA003 stdout writes" `Quick test_sa003_pos;
          Alcotest.test_case "SA004 wall clock" `Quick test_sa004_pos;
          Alcotest.test_case "SA005 racy closures" `Quick test_sa005_pos;
          Alcotest.test_case "SA006 swallowing catch-alls" `Quick
            test_sa006_pos;
          Alcotest.test_case "SA007 unknown fault site" `Quick test_sa007_pos;
          Alcotest.test_case "SA008 literal exit" `Quick test_sa008_pos;
          Alcotest.test_case "SA000 unparseable" `Quick test_sa000_unparseable;
        ] );
      ( "corpus-neg",
        [
          Alcotest.test_case "tolerance compares" `Quick (neg "sa001_neg.ml");
          Alcotest.test_case "seeded rng" `Quick (neg "sa002_neg.ml");
          Alcotest.test_case "logging" `Quick (neg "sa003_neg.ml");
          Alcotest.test_case "logical clocks" `Quick (neg "sa004_neg.ml");
          Alcotest.test_case "synchronized closures" `Quick (neg "sa005_neg.ml");
          Alcotest.test_case "containment handlers" `Quick (neg "sa006_neg.ml");
          Alcotest.test_case "catalogued fault site" `Quick (neg "sa007_neg.ml");
          Alcotest.test_case "mapped exit codes" `Quick (neg "sa008_neg.ml");
        ] );
      ( "roles",
        [ Alcotest.test_case "role gating" `Quick test_roles_gate_rules ] );
      ( "baseline",
        [
          Alcotest.test_case "parse" `Quick test_baseline_parse;
          Alcotest.test_case "rejects bad entries" `Quick test_baseline_rejects;
          Alcotest.test_case "apply/stale" `Quick test_baseline_apply;
          Alcotest.test_case "SA000 uncoverable" `Quick
            test_baseline_never_covers_sa000;
        ] );
      ( "repo",
        [
          Alcotest.test_case "clean against baseline" `Quick
            test_repo_clean_against_baseline;
          Alcotest.test_case "justifications present" `Quick
            test_repo_baseline_has_justifications;
        ] );
    ]
