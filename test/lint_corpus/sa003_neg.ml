(* SA003 negative: structured logging and data-returning renderers. *)
let report x = Logs.info (fun m -> m "%s" x)
let render buf x = Buffer.add_string buf x
let show ppf x = Format.fprintf ppf "%s" x
