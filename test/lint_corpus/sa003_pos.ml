(* SA003 positive: direct stdout/stderr writes from library code. *)
let report x = print_endline x
let shout fmt_arg = Printf.printf "%s\n" fmt_arg
let complain x = Format.eprintf "%s@." x
