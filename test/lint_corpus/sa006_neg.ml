(* SA006 negative: catch-alls that keep Abort/Injected flowing. *)

(* Abort passes through; everything else is deliberately contained. *)
let guard f =
  try f () with
  | Fp_util.Pool.Abort as e -> raise e
  | exn ->
    ignore exn;
    None

(* A catch-all whose body re-raises swallows nothing. *)
let cleanup f close =
  try f ()
  with e ->
    close ();
    raise e
