(* SA010 negative: pool tasks whose whole call graph stays
   deterministic — pure helpers, arithmetic, locally-created state. *)

let double x = x * 2

let combine a b = a + b

let wave pool xs =
  Fp_util.Pool.map pool (fun ~worker:_ x -> combine (double x) 1) xs

(* A task-local accumulator is invisible outside the task. *)
let fold pool xs =
  Fp_util.Pool.map pool
    (fun ~worker:_ x ->
      let acc = ref 0 in
      for i = 1 to x do
        acc := !acc + double i
      done;
      !acc)
    xs
