(* SA010 positive: ambient effects hidden behind helpers — invisible to
   the syntactic rules (SA002 only knows Random, SA003 only knows the
   print family), caught by the transitive effect fixpoint. *)

(* Ambient RNG two helpers below the task: Hashtbl.randomize reseeds
   the universal hash, and no syntactic rule knows its name. *)
let reseed_tables () = Hashtbl.randomize ()

let prepare_shard shard =
  reseed_tables ();
  shard * 2

let wave pool shards =
  Fp_util.Pool.map pool (fun ~worker:_ shard -> prepare_shard shard) shards

(* Console input below the task: read_line is IO outside SA003's
   write-side table. *)
let ask () = read_line ()

let load_hint key = if key = 0 then 0 else String.length (ask ())

let hints pool keys =
  Fp_util.Pool.map pool (fun ~worker:_ k -> load_hint k) keys
