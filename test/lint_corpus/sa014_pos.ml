(* SA014 positive: channel lifecycle violations — a write after close
   reached through a [let]-alias, and a close hidden in a helper whose
   summary still closes the caller's channel. *)

(* Alias: dup and oc are the same abstract cell, so the close through
   one name kills writes through the other.  The unprotected close is
   also skippable if the first write raises. *)
let alias_bad path =
  let oc = open_out path in
  let dup = oc in
  output_string dup "x";
  close_out oc;
  output_string dup "y"

(* The helper's protocol summary records "param 0: open -> closed", so
   the caller's later write is a use-after-close. *)
let finish oc = close_out oc

let helper_bad path =
  let oc = open_out path in
  finish oc;
  output_string oc "z"
