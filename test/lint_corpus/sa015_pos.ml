(* SA015 positive: commit-like sinks inside pool tasks with no abort
   poll on the path — directly and through a helper's summary. *)

(* A helper that publishes: its abort summary records the unpolled
   Journal.write sink. *)
let commit_result j = Fp_core.Journal.write ~path:"ckpt.json" j

let publish pool j =
  Fp_util.Pool.run pool ~n:4 (fun ~worker:_ _ -> commit_result j)

(* A commit-named sink reached directly from the task body. *)
let commit_stage _i = ()

let unpolled pool =
  Fp_util.Pool.run pool ~n:4 (fun ~worker:_ i -> commit_stage i)
