(* SA006 positive: catch-alls that swallow the containment exceptions. *)
let guard f = try f () with _ -> None

let quiet f x = try Some (f x) with e -> ignore e; None
