(* SA004 positive: wall-clock reads in library code. *)
let stamp () = Unix.gettimeofday ()
let cpu () = Sys.time ()
