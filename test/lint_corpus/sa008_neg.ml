(* SA008 negative: exit codes drawn from the Degradation mapping. *)
let () =
  if Array.length Sys.argv > 3 then exit Fp_core.Degradation.exit_error
