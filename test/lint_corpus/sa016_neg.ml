(* SA016 negative: the sanctioned stream shapes — sample before split,
   and sampling a split-off child (itself a fresh stream). *)

let sample_then_split seed =
  let rng = Fp_util.Rng.create seed in
  let x = Fp_util.Rng.int rng 10 in
  let kids = Fp_util.Rng.split_n rng 4 in
  (x, kids)

let child_ok seed =
  let rng = Fp_util.Rng.create seed in
  let child = Fp_util.Rng.split rng in
  Fp_util.Rng.float child 1.0
