(* SA012 negative: the blessed shapes — eager per-worker copies
   addressed through a one-line accessor, synchronized state, and
   task-local state handed to mutating helpers. *)

let step st = st := !st + 1

(* The eager per-worker-copy pattern from docs/parallel.md: one slot
   per worker, filled before the batch, read back at the worker index
   through a local accessor.  The helper mutates its parameter, but the
   parameter is this worker's own copy. *)
let wave pool =
  let states = Array.init (Fp_util.Pool.jobs pool) (fun _ -> ref 0) in
  let state_of worker = Array.get states worker in
  Fp_util.Pool.run pool (fun ~worker () -> step (state_of worker))

(* Synchronized shared state is fine. *)
let gauge = Atomic.make 0

let ticks pool xs =
  Fp_util.Pool.map pool
    (fun ~worker:_ x ->
      Atomic.incr gauge;
      x)
    xs

(* A task-local value handed to a mutating helper is the normal
   ownership pattern. *)
let local_count pool xs =
  Fp_util.Pool.map pool
    (fun ~worker:_ x ->
      let c = ref 0 in
      step c;
      !c + x)
    xs
