(* SA000: this file deliberately does not parse. *)
let let = (
