(* SA002 positive: ambient Stdlib.Random instead of Fp_util.Rng. *)
let draw () = Random.int 10
let noisy () = Stdlib.Random.float 1.0
