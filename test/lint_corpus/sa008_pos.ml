(* SA008 positive: exit with a bare integer literal. *)
let () = if Array.length Sys.argv > 3 then exit 2
