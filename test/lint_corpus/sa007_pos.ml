(* SA007 positive: fault-site literal outside the canonical catalogue. *)
let poke () = Fp_util.Fault.fire "totally.unknown_site"
