(* SA001 positive: raw float comparisons a library module must not make. *)
let lt_literal x = x < 1.5
let cmp_arith a b = a +. 1. >= b
let eq_annotated a b = (a : float) = b
let via_float_compare a b = Float.compare a b
