(* SA011 positive: a helper below the pool task swallows every
   exception — Abort/Injected raised inside the task vanish one call
   down, where SA006's per-handler view may be out of force (bench/bin
   pools) and the task itself looks clean. *)

let try_candidate k = try Some (100 / k) with _ -> None

let sweep pool ks =
  Fp_util.Pool.map pool (fun ~worker:_ k -> try_candidate k) ks
