(* SA017 positive: read-modify-write on an Atomic.t as separate
   get/set — the load-store shape that races between domains. *)

(* Inline: the set's value re-reads the same atomic. *)
let bump counter = Atomic.set counter (Atomic.get counter + 1)

(* Through a let binding: the read is named, then stored back with no
   compare_and_set consuming it. *)
let bump_via_let counter =
  let cur = Atomic.get counter in
  Atomic.set counter (cur + 1)
