(* SA001 negative: tolerance-disciplined and non-float comparisons. *)
let lt a b = Fp_geometry.Tol.lt a b
let close a b = Fp_geometry.Tol.within ~tol:1e-9 a b
let int_cmp (a : int) b = a < b
let pick a b = Float.min a b
