(* SA015 negative: every commit-like sink inside a pool task is
   dominated by an abort poll — inline or inherited from a helper whose
   summary polls on all paths. *)

let commit_stage _i = ()

(* Inline poll before the sink. *)
let polled pool abort =
  Fp_util.Pool.run pool ~abort ~n:4 (fun ~worker:_ i ->
      Fp_util.Abort.check abort;
      commit_stage i)

(* The helper polls on every path before its own sink, so its summary
   both suppresses the sink and credits the caller. *)
let guarded abort i =
  Fp_util.Abort.check abort;
  commit_stage i

let polled_deep pool abort =
  Fp_util.Pool.run pool ~abort ~n:4 (fun ~worker:_ i -> guarded abort i)
