(* SA005 negative: synchronized or task-disjoint Pool closures. *)
let hits = Atomic.make 0

(* Atomic counters are fine. *)
let count pool items =
  Fp_util.Pool.map pool
    (fun ~worker:_ i ->
      Atomic.incr hits;
      i)
    items

(* The disjoint-slot convention: captured array written at an index
   derived from the task argument. *)
let gather pool n f =
  let out = Array.make n None in
  Fp_util.Pool.run pool (fun ~worker:_ i -> out.(i) <- Some (f i));
  out

(* Purely local mutation inside the task. *)
let local_sum pool xs =
  Fp_util.Pool.map pool
    (fun ~worker:_ row ->
      let t = ref 0. in
      Array.iter (fun v -> t := !t +. v) row;
      !t)
    xs
