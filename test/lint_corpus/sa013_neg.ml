(* SA013 negative: pool lifecycles the DFA accepts — the with_pool
   combinator, an explicit Fun.protect teardown, and a pool that
   escapes into a store (conservatively untracked). *)

let submit pool = Fp_util.Pool.run pool ~n:1 (fun ~worker:_ _ -> ())

(* The blessed shape: with_pool owns create + shutdown. *)
let combinator () = Fp_util.Pool.with_pool ~jobs:2 (fun pool -> submit pool)

(* Manual create, but the shutdown lives in ~finally: exception-safe,
   exactly-once on both exits. *)
let explicit () =
  let pool = Fp_util.Pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Fp_util.Pool.shutdown pool)
    (fun () -> submit pool)

(* Escaping into mutable storage ends tracking: ownership moved, the
   walk stays quiet rather than guessing. *)
type holder = { mutable slot : Fp_util.Pool.t option }

let stash h =
  let pool = Fp_util.Pool.create ~jobs:2 in
  h.slot <- Some pool
