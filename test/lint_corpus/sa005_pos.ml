(* SA005 positive: Pool closures racing on captured mutable state. *)
let hits = ref 0

type acc = { mutable best : float }

let shared = { best = 0. }

(* Captured ref mutated without Atomic. *)
let count pool items =
  Fp_util.Pool.map pool
    (fun ~worker:_ i ->
      incr hits;
      i)
    items

(* Captured record field mutated without a lock. *)
let scan pool xs =
  Fp_util.Pool.map pool
    (fun ~worker:_ x ->
      if x > shared.best then shared.best <- x;
      x)
    xs

(* Worker id routed into captured per-worker state (needs a baseline
   justification when the copies really are eager and disjoint). *)
let states = Array.make 8 None

let wave pool tasks =
  ignore tasks;
  Fp_util.Pool.run pool (fun ~worker () -> ignore (Array.get states worker))
