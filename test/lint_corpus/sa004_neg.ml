(* SA004 negative: logical clocks only. *)
let ticks = ref 0

let stamp () =
  incr ticks;
  !ticks
