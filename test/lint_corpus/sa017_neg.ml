(* SA017 negative: the sanctioned atomic shapes — a CAS retry loop
   (the read is consumed by compare_and_set), fetch_and_add, and a
   get/set pair on two different atomics. *)

let rec bump counter =
  let cur = Atomic.get counter in
  if not (Atomic.compare_and_set counter cur (cur + 1)) then bump counter

let incr_fast counter = ignore (Atomic.fetch_and_add counter 1)

(* Reading one atomic to seed another is not an RMW on either. *)
let transfer a b = Atomic.set b (Atomic.get a + 1)
