(* SA012 positive: captured mutable state reaching the pool task
   through helpers — exactly what the syntactic SA005 pass cannot see,
   because no mutation is textually inside the closure. *)

(* A captured ref handed to a helper that mutates its parameter. *)
let bump c = incr c

let total = ref 0

let count pool xs =
  Fp_util.Pool.map pool (fun ~worker:_ x -> bump total; x) xs

(* A helper that mutates module-level state, one call below the task. *)
let tally : (int, bool) Hashtbl.t = Hashtbl.create 16

let note k = Hashtbl.replace tally k true

let record pool xs =
  Fp_util.Pool.map pool (fun ~worker:_ x -> note x; x) xs

(* A let-bound local helper capturing shared state. *)
let hits = ref 0

let scan pool xs =
  let mark () = incr hits in
  Fp_util.Pool.map pool (fun ~worker:_ x -> mark (); x) xs
