(* SA007 negative: a catalogued fault site. *)
let poke () = Fp_util.Fault.fire "pool.worker_exn"
