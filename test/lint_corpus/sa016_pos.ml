(* SA016 positive: a parent Rng.t sampled after children were split
   from it — directly, and through a helper's summary. *)

let bad_parent seed =
  let rng = Fp_util.Rng.create seed in
  let children = Fp_util.Rng.split_n rng 4 in
  let x = Fp_util.Rng.int rng 10 in
  (children, x)

(* The helper's summary records "fresh -> fresh" and "split -> error",
   so sampling through it after a split is still caught. *)
let draw rng = Fp_util.Rng.int rng 100

let bad_helper seed =
  let rng = Fp_util.Rng.create seed in
  let _kids = Fp_util.Rng.split_n rng 2 in
  draw rng
