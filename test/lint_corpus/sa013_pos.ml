(* SA013 positive: pool lifecycle violations the typestate walk catches
   — a use after shutdown reached through two helper summaries, and a
   pool whose shutdown only happens on one branch. *)

(* Neither helper is wrong by itself; each one's protocol summary just
   records "param 0: live -> live (use)" / "down -> error". *)
let submit pool = Fp_util.Pool.run pool ~n:1 (fun ~worker:_ _ -> ())

let dispatch pool = submit pool

(* Use after shutdown, two helpers deep: the error surfaces at the
   dispatch call with the summary-composed trace. *)
let use_after_shutdown () =
  let pool = Fp_util.Pool.create ~jobs:2 in
  Fp_util.Pool.shutdown pool;
  dispatch pool

(* Shutdown on one branch only: the merge leaves {live, down}, so the
   creation site is flagged as not shut down on every path (and the
   conditional shutdown itself is skippable if submit raises). *)
let conditional_leak flag =
  let pool = Fp_util.Pool.create ~jobs:2 in
  submit pool;
  if flag then Fp_util.Pool.shutdown pool
