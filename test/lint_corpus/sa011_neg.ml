(* SA011 negative: containment below the task, not swallowing — the
   cooperative interrupt is re-raised, or the exception is recorded in
   task-local state for a later re-raise. *)

exception Abort

(* Everything but the cooperative interrupt is absorbed: the
   sanctioned containment shape. *)
let guarded k = try k * 2 with Abort -> raise Abort | _ -> 0

(* Record-and-continue: the caught exception flows into a store the
   caller owns, so nothing is dropped. *)
let recorded slot k =
  try k * 2
  with e ->
    slot := Some e;
    0

let sweep pool ks =
  Fp_util.Pool.map pool
    (fun ~worker:_ k ->
      let slot = ref None in
      guarded k + recorded slot k)
    ks
