(* SA014 negative: channel lifecycles the DFA accepts — Fun.protect
   reads and writes, close with no prior uses, and the sanctioned
   close_noerr after close. *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Zero uses before the close: nothing can raise in between, so the
   bare close is fine. *)
let touch path =
  let oc = open_out path in
  close_out oc

(* close_out in the body, close_out_noerr in ~finally: the noerr close
   on an already-closed channel is the idempotent-teardown idiom, not a
   double close. *)
let noerr_after_close path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "x";
      close_out oc)
