(* SA002 negative: seeded Rng streams. *)
let draw rng = Fp_util.Rng.int rng 10
let fresh seed = Fp_util.Rng.create ~seed
