(* Tests for Fp_milp: the expression DSL, the model wrapper, and the
   branch-and-bound solver — including a brute-force cross-check over all
   0-1 assignments of small random MILPs. *)

module Expr = Fp_milp.Expr
module Model = Fp_milp.Model
module BB = Fp_milp.Branch_bound
module Lp = Fp_lp.Lp_problem

let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

let best_exn outcome =
  match outcome.BB.best with
  | Some (x, obj) -> (x, obj)
  | None -> Alcotest.fail "expected a solution"

(* ------------------------------ Expr -------------------------------- *)

let test_expr_algebra () =
  let m = Model.create () in
  let a = Model.add_continuous m "a" in
  let b = Model.add_continuous m "b" in
  let e = Expr.(var a + (2. * var b) - const 3. + var a) in
  checkf "constant" (-3.) (Expr.constant e);
  let terms = Expr.terms e in
  Alcotest.(check int) "two distinct vars" 2 (List.length terms);
  checkf "a coeff" 2. (List.assoc_opt a (List.map (fun (c, v) -> (v, c)) terms)
                       |> Option.get);
  checkf "eval" 5. (Expr.eval e [| 2.; 2. |])

let test_expr_zero_coeffs_dropped () =
  let m = Model.create () in
  let a = Model.add_continuous m "a" in
  let e = Expr.(var a - var a) in
  Alcotest.(check int) "cancels" 0 (List.length (Expr.terms e))

let test_expr_sum_neg () =
  let m = Model.create () in
  let a = Model.add_continuous m "a" in
  let e = Expr.(sum [ var a; neg (var a); const 4. ]) in
  checkf "eval sum" 4. (Expr.eval e [| 100. |])

(* ------------------------------ Model ------------------------------- *)

let test_model_integrality_bookkeeping () =
  let m = Model.create () in
  let x = Model.add_continuous m "x" in
  let b = Model.add_binary m "b" in
  let k = Model.add_integer m ~lb:0. ~ub:7. "k" in
  Alcotest.(check bool) "x not integer" false (Model.is_integer_var m x);
  Alcotest.(check bool) "b integer" true (Model.is_integer_var m b);
  Alcotest.(check (list int)) "order" [ b; k ] (Model.integer_vars m);
  Alcotest.(check int) "count" 2 (Model.num_integer_vars m)

let test_model_pair_validation () =
  let m = Model.create () in
  let x = Model.add_continuous m "x" in
  let b = Model.add_binary m "b" in
  Alcotest.check_raises "non-binary pair"
    (Invalid_argument "Model.declare_pair: both variables must be binary")
    (fun () -> Model.declare_pair m b x)

let test_model_integral_and_round () =
  let m = Model.create () in
  let _x = Model.add_continuous m "x" in
  let b = Model.add_binary m "b" in
  Alcotest.(check bool) "integral" true (Model.integral m [| 0.3; 1. |]);
  Alcotest.(check bool) "not integral" false (Model.integral m [| 0.3; 0.4 |]);
  let r = Model.round_integers m [| 0.3; 0.6 |] in
  checkf "continuous untouched" 0.3 r.(0);
  checkf "binary rounded" 1. r.(b)

let test_model_objective_constant () =
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:10. "x" in
  Model.set_objective m `Minimize Expr.(var x + const 5.);
  let outcome = BB.solve m in
  let _, obj = best_exn outcome in
  checkf "constant included" 5. obj

(* --------------------------- known MILPs ---------------------------- *)

let test_knapsack () =
  (* max 60a + 100b + 120c st 10a + 20b + 30c <= 50 -> 220 at (0,1,1). *)
  let m = Model.create () in
  let a = Model.add_binary m "a" in
  let b = Model.add_binary m "b" in
  let c = Model.add_binary m "c" in
  Model.add_constr m
    Expr.((10. * var a) + (20. * var b) + (30. * var c))
    Model.Le (Expr.const 50.);
  Model.set_objective m `Maximize
    Expr.((60. * var a) + (100. * var b) + (120. * var c));
  let outcome = BB.solve m in
  let sol, obj = best_exn outcome in
  checkf "obj" 220. obj;
  checkf "a" 0. sol.(a);
  checkf "b" 1. sol.(b);
  checkf "c" 1. sol.(c);
  Alcotest.(check bool) "proved optimal" true (outcome.BB.status = BB.Optimal)

let test_integrality_gap () =
  (* max x1 + x2 st 2x1 + 2x2 <= 3, binaries: LP gives 1.5, MILP 1. *)
  let m = Model.create () in
  let x1 = Model.add_binary m "x1" in
  let x2 = Model.add_binary m "x2" in
  Model.add_constr m Expr.((2. * var x1) + (2. * var x2)) Model.Le (Expr.const 3.);
  Model.set_objective m `Maximize Expr.(var x1 + var x2);
  let outcome = BB.solve m in
  let _, obj = best_exn outcome in
  checkf "milp optimum" 1. obj;
  checkf "lp bound" 1.5 outcome.BB.root_bound

let test_general_integer () =
  (* min 3x + 4y st x + 2y >= 7, integers 0..10 -> try x=7,y=0: 21;
     x=1,y=3: 15; x=3,y=2: 17; best is y=3,x=1 -> 15. *)
  let m = Model.create () in
  let x = Model.add_integer m ~lb:0. ~ub:10. "x" in
  let y = Model.add_integer m ~lb:0. ~ub:10. "y" in
  Model.add_constr m Expr.(var x + (2. * var y)) Model.Ge (Expr.const 7.);
  Model.set_objective m `Minimize Expr.((3. * var x) + (4. * var y));
  let _, obj = best_exn (BB.solve m) in
  checkf "obj" 15. obj

let test_infeasible_milp () =
  let m = Model.create () in
  let a = Model.add_binary m "a" in
  let b = Model.add_binary m "b" in
  Model.add_constr m Expr.(var a + var b) Model.Ge (Expr.const 3.);
  let outcome = BB.solve m in
  Alcotest.(check bool) "infeasible" true (outcome.BB.status = BB.Infeasible);
  Alcotest.(check bool) "no point" true (outcome.BB.best = None)

let test_unbounded_milp () =
  let m = Model.create () in
  let x = Model.add_continuous m "x" in
  Model.set_objective m `Maximize (Expr.var x);
  let outcome = BB.solve m in
  Alcotest.(check bool) "unbounded" true (outcome.BB.status = BB.Unbounded)

let test_pure_lp_through_bb () =
  (* No integer variables: branch and bound should return the LP optimum
     from the root. *)
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:4. "x" in
  Model.set_objective m `Maximize (Expr.var x);
  let outcome = BB.solve m in
  let _, obj = best_exn outcome in
  checkf "lp opt" 4. obj;
  Alcotest.(check int) "one node" 1 outcome.BB.nodes

let test_warm_start_accepted () =
  let m = Model.create () in
  let a = Model.add_binary m "a" in
  let b = Model.add_binary m "b" in
  Model.add_constr m Expr.(var a + var b) Model.Le (Expr.const 1.);
  Model.set_objective m `Maximize Expr.((2. * var a) + (3. * var b)) ;
  (* Warm start with the suboptimal (1, 0). *)
  let outcome = BB.solve ~warm:[| 1.; 0. |] m in
  let sol, obj = best_exn outcome in
  checkf "improved beyond warm" 3. obj;
  checkf "b" 1. sol.(b)

let test_warm_start_rejected () =
  (* An infeasible warm start must be ignored, not believed. *)
  let m = Model.create () in
  let a = Model.add_binary m "a" in
  Model.add_constr m (Expr.var a) Model.Le (Expr.const 0.);
  Model.set_objective m `Maximize (Expr.var a);
  let outcome = BB.solve ~warm:[| 1. |] m in
  let _, obj = best_exn outcome in
  checkf "true optimum" 0. obj

let test_node_limit_returns_feasible () =
  (* A problem big enough not to finish in 3 nodes, with a warm start:
     must return the warm incumbent with status Feasible. *)
  let m = Model.create () in
  let vars = List.init 14 (fun i -> Model.add_binary m (Printf.sprintf "b%d" i)) in
  List.iteri
    (fun i v ->
      List.iteri
        (fun j w ->
          if j > i then
            Model.add_constr m Expr.(var v + var w) Model.Le (Expr.const 1.))
        vars)
    vars;
  Model.set_objective m `Maximize (Expr.sum (List.map Expr.var vars));
  let params = { BB.default_params with BB.node_limit = 3 } in
  let warm = Array.make 14 0. in
  warm.(0) <- 1.;
  let outcome = BB.solve ~params ~warm m in
  Alcotest.(check bool) "status feasible" true (outcome.BB.status = BB.Feasible);
  let _, obj = best_exn outcome in
  Alcotest.(check bool) "at least warm" true (obj >= 1. -. 1e-9)

let test_constr_or_bound_folds_singletons () =
  (* Singleton rows become bounds; multi-term rows stay rows; an empty
     tightening survives as an infeasible row. *)
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:10. "x" in
  let y = Model.add_continuous m ~ub:10. "y" in
  Model.add_constr_or_bound m Expr.(2. * var x) Model.Le (Expr.const 8.);
  Model.add_constr_or_bound m (Expr.var x) Model.Ge (Expr.const 1.);
  Model.add_constr_or_bound m Expr.(var x + var y) Model.Le (Expr.const 12.);
  Alcotest.(check int) "only the 2-term row remains" 1 (Model.num_constrs m);
  let lb, ub = Model.var_bounds m x in
  checkf "folded lb" 1. lb;
  checkf "folded ub" 4. ub;
  Model.add_constr_or_bound m (Expr.var y) Model.Ge (Expr.const 11.);
  Alcotest.(check int) "empty tightening kept as row" 2 (Model.num_constrs m);
  Model.set_objective m `Minimize (Expr.var x);
  let outcome = BB.solve m in
  Alcotest.(check bool) "infeasible via kept row" true
    (outcome.BB.status = BB.Infeasible)

let test_budget_accounting_exact () =
  (* Every counted node evaluates exactly one LP, and every LP is either
     a warm hit or a cold solve — no double counting anywhere. *)
  let m = Model.create () in
  let x = Model.add_integer m ~lb:0. ~ub:10. "x" in
  let y = Model.add_integer m ~lb:0. ~ub:10. "y" in
  Model.add_constr m Expr.(var x + (2. * var y)) Model.Ge (Expr.const 7.);
  Model.set_objective m `Minimize Expr.((3. * var x) + (4. * var y));
  let outcome = BB.solve m in
  Alcotest.(check int) "lp_solves = nodes" outcome.BB.nodes
    outcome.BB.lp_solves;
  Alcotest.(check int) "warm + cold = lp_solves" outcome.BB.lp_solves
    (outcome.BB.warm_hits + outcome.BB.cold_solves)

let test_pure_lp_single_solve () =
  (* The root LP must be solved exactly once, not once for the bound and
     again for the root node. *)
  let m = Model.create () in
  let x = Model.add_continuous m ~ub:4. "x" in
  Model.set_objective m `Maximize (Expr.var x);
  let outcome = BB.solve m in
  Alcotest.(check int) "one node" 1 outcome.BB.nodes;
  Alcotest.(check int) "one lp solve" 1 outcome.BB.lp_solves

let test_zero_node_limit () =
  (* With a zero node budget nothing may be solved, not even the root. *)
  let m = Model.create () in
  let a = Model.add_binary m "a" in
  Model.set_objective m `Maximize (Expr.var a);
  let params = { BB.default_params with BB.node_limit = 0 } in
  let outcome = BB.solve ~params m in
  Alcotest.(check int) "no nodes" 0 outcome.BB.nodes;
  Alcotest.(check int) "no lp solves" 0 outcome.BB.lp_solves;
  Alcotest.(check bool) "no solution" true
    (outcome.BB.status = BB.No_solution)

let test_warm_lp_hits_and_ablation () =
  (* A branched search warm-starts children from the parent basis; with
     warm_lp disabled every node is a cold solve, and both modes must
     find the same optimum. *)
  let build () =
    let m = Model.create () in
    let vars =
      List.init 6 (fun i -> Model.add_binary m (Printf.sprintf "b%d" i))
    in
    List.iteri
      (fun i v ->
        List.iteri
          (fun j w ->
            if j > i && (i + j) mod 2 = 1 then
              Model.add_constr m
                Expr.((2. * var v) + (2. * var w))
                Model.Le (Expr.const 3.))
          vars)
      vars;
    Model.set_objective m `Maximize
      (Expr.sum
         (List.mapi
            (fun i v ->
              let c = float_of_int (i + 1) in
              Expr.(c * var v))
            vars));
    m
  in
  let warm_out = BB.solve (build ()) in
  let cold_params = { BB.default_params with BB.warm_lp = false } in
  let cold_out = BB.solve ~params:cold_params (build ()) in
  let _, warm_obj = best_exn warm_out in
  let _, cold_obj = best_exn cold_out in
  checkf "same optimum" cold_obj warm_obj;
  Alcotest.(check bool) "warm path exercised" true (warm_out.BB.warm_hits > 0);
  Alcotest.(check int) "no warm hits when disabled" 0 cold_out.BB.warm_hits;
  Alcotest.(check int) "all cold when disabled" cold_out.BB.lp_solves
    cold_out.BB.cold_solves;
  (* Shadow mode prices every node cold on the side without disturbing
     the search: identical tree and answer, nonzero shadow pivots. *)
  Alcotest.(check int) "shadow off by default" 0 warm_out.BB.shadow_pivots;
  let shadow_params = { BB.default_params with BB.shadow_cold = true } in
  let shadow_out = BB.solve ~params:shadow_params (build ()) in
  let _, shadow_obj = best_exn shadow_out in
  checkf "shadow same optimum" warm_obj shadow_obj;
  Alcotest.(check int) "shadow same tree" warm_out.BB.nodes shadow_out.BB.nodes;
  Alcotest.(check int) "shadow same warm pivots" warm_out.BB.pivots
    shadow_out.BB.pivots;
  Alcotest.(check bool) "shadow cold pivots counted" true
    (shadow_out.BB.shadow_pivots > 0)

let test_pair_branching_used () =
  (* Exactly-one-of-four via a declared pair: constraints force the combo
     (1, 1); make sure pair branching converges there. *)
  let m = Model.create () in
  let bx = Model.add_binary m "bx" in
  let by = Model.add_binary m "by" in
  Model.declare_pair m bx by;
  Model.add_constr m Expr.(var bx + var by) Model.Ge (Expr.const 2.);
  Model.set_objective m `Minimize Expr.(var bx + var by);
  let sol, obj = best_exn (BB.solve m) in
  checkf "obj" 2. obj;
  checkf "bx" 1. sol.(bx);
  checkf "by" 1. sol.(by)

let test_branch_rules_agree () =
  (* Same model solved under both branch rules gives the same optimum. *)
  let build () =
    let m = Model.create () in
    let vars =
      List.init 6 (fun i -> Model.add_binary m (Printf.sprintf "b%d" i))
    in
    List.iteri
      (fun i v ->
        let c = float_of_int (i + 1) in
        Model.add_constr m Expr.(c * var v) Model.Le
          (Expr.const (float_of_int i)))
      vars;
    Model.set_objective m `Maximize
      (Expr.sum
         (List.mapi
            (fun i v ->
              let c = float_of_int (i + 2) in
              Expr.(c * var v))
            vars));
    m
  in
  let o1 =
    BB.solve ~params:{ BB.default_params with BB.branch_rule = BB.Most_fractional }
      (build ())
  in
  let o2 =
    BB.solve ~params:{ BB.default_params with BB.branch_rule = BB.First_fractional }
      (build ())
  in
  checkf "same optimum" (snd (best_exn o1)) (snd (best_exn o2))

(* ------------------- brute-force cross-check ------------------------ *)

(* Random small 0-1 MILPs: n binaries, one continuous variable in [0, 10],
   a few <= rows with small integer coefficients.  Brute-force over all
   2^n assignments; for each, the continuous part is a 1-D LP solved by
   hand (take the largest feasible value if its objective coefficient is
   positive, else the smallest). *)
let random_milp_arb =
  QCheck.make
    ~print:(fun (n, cc, rows) ->
      Printf.sprintf "n=%d cc=%g rows=%d" n cc (List.length rows))
    QCheck.Gen.(
      triple (int_range 2 6)
        (map (fun v -> float_of_int (v - 2)) (int_bound 4))
        (list_size (int_range 1 4)
           (pair
              (list_size (int_range 2 6)
                 (map (fun v -> float_of_int (v - 2)) (int_bound 5)))
              (map (fun v -> float_of_int (v + 1)) (int_bound 12)))))

let brute_force_milp n cc rows obj_coeffs =
  (* maximize sum obj_coeffs_i b_i + cc * t  st rows; t in [0, 10]. *)
  let best = ref neg_infinity in
  for mask = 0 to (1 lsl n) - 1 do
    let b i = if mask land (1 lsl i) <> 0 then 1. else 0. in
    (* Each row: sum a_i b_i + a_t t <= r, where a_t is the last coeff. *)
    let t_lo = ref 0. and t_hi = ref 10. and feasible = ref true in
    List.iter
      (fun (coeffs, r) ->
        let coeffs = Array.of_list coeffs in
        let fixed = ref 0. in
        for i = 0 to n - 1 do
          if i < Array.length coeffs then fixed := !fixed +. (coeffs.(i) *. b i)
        done;
        (* Indices >= n all multiply t in the model; mirror that here. *)
        let a_t = ref 0. in
        for i = n to Array.length coeffs - 1 do
          a_t := !a_t +. coeffs.(i)
        done;
        let a_t = !a_t in
        let slack = r -. !fixed in
        if Float.abs a_t < 1e-9 then begin
          if slack < -1e-9 then feasible := false
        end
        else if a_t > 0. then t_hi := Float.min !t_hi (slack /. a_t)
        else t_lo := Float.max !t_lo (slack /. a_t))
      rows;
    if !feasible && !t_lo <= !t_hi +. 1e-9 then begin
      let t = if cc >= 0. then !t_hi else !t_lo in
      let v =
        cc *. t
        +. List.fold_left ( +. ) 0.
             (List.init n (fun i -> obj_coeffs.(i) *. b i))
      in
      if v > !best then best := v
    end
  done;
  !best

let test_bb_matches_brute_force =
  QCheck.Test.make ~name:"branch-and-bound = exhaustive enumeration"
    ~count:200 random_milp_arb (fun (n, cc, rows) ->
      let obj_coeffs = Array.init n (fun i -> float_of_int ((i mod 3) + 1)) in
      let m = Model.create () in
      let bs = List.init n (fun i -> Model.add_binary m (Printf.sprintf "b%d" i)) in
      let t = Model.add_continuous m ~ub:10. "t" in
      List.iter
        (fun (coeffs, r) ->
          let terms =
            List.mapi
              (fun i c ->
                if i < n then Expr.(c * var (List.nth bs i))
                else Expr.(c * var t))
              coeffs
          in
          Model.add_constr m (Expr.sum terms) Model.Le (Expr.const r))
        rows;
      Model.set_objective m `Maximize
        Expr.(
          sum (List.mapi (fun i b -> obj_coeffs.(i) * var b) bs)
          + (cc * var t));
      let outcome = BB.solve m in
      let expected = brute_force_milp n cc rows obj_coeffs in
      match outcome.BB.best with
      | Some (_, obj) -> Float.abs (obj -. expected) < 1e-5
      | None -> expected = neg_infinity)

let test_bb_solutions_integral =
  QCheck.Test.make ~name:"incumbents are integral and feasible" ~count:150
    random_milp_arb (fun (n, cc, rows) ->
      let m = Model.create () in
      let bs = List.init n (fun i -> Model.add_binary m (Printf.sprintf "b%d" i)) in
      let t = Model.add_continuous m ~ub:10. "t" in
      List.iter
        (fun (coeffs, r) ->
          let terms =
            List.mapi
              (fun i c ->
                if i < n then Expr.(c * var (List.nth bs i))
                else Expr.(c * var t))
              coeffs
          in
          Model.add_constr m (Expr.sum terms) Model.Le (Expr.const r))
        rows;
      Model.set_objective m `Maximize Expr.(sum (List.map var bs) + (cc * var t));
      match (BB.solve m).BB.best with
      | Some (x, _) ->
        Model.integral m x && Lp.constraint_violation (Model.problem m) x < 1e-5
      | None -> true)

(* -------------------- parallel determinism -------------------------- *)

(* Build the same random MILP shape the brute-force test uses, so the
   parallel runs are exercised on the full generator distribution. *)
let build_random_milp (n, cc, rows) =
  let m = Model.create () in
  let bs = List.init n (fun i -> Model.add_binary m (Printf.sprintf "b%d" i)) in
  let t = Model.add_continuous m ~ub:10. "t" in
  List.iter
    (fun (coeffs, r) ->
      let terms =
        List.mapi
          (fun i c ->
            if i < n then Expr.(c * var (List.nth bs i))
            else Expr.(c * var t))
          coeffs
      in
      Model.add_constr m (Expr.sum terms) Model.Le (Expr.const r))
    rows;
  Model.set_objective m `Maximize Expr.(sum (List.map var bs) + (cc * var t));
  m

(* ramp_nodes = 1 forces almost the whole tree through the frontier
   machinery even on these small instances, which is the path under
   test; jobs > 1 actually spawns domains. *)
let par_params = { BB.default_params with jobs = 4; ramp_nodes = 1 }

let test_parallel_deterministic_matches_sequential =
  QCheck.Test.make
    ~name:"deterministic jobs=4 replays jobs=1 bit-for-bit" ~count:75
    random_milp_arb (fun inst ->
      let seq = BB.solve ~params:BB.default_params (build_random_milp inst) in
      let par = BB.solve ~params:par_params (build_random_milp inst) in
      seq.BB.status = par.BB.status
      && (match (seq.BB.best, par.BB.best) with
         | None, None -> true
         | Some (x1, o1), Some (x2, o2) -> o1 = o2 && x1 = x2
         | _ -> false))

let test_parallel_free_running_optimal =
  QCheck.Test.make ~name:"free-running jobs=4 finds the same optimum"
    ~count:50 random_milp_arb (fun inst ->
      let seq = BB.solve ~params:BB.default_params (build_random_milp inst) in
      let par =
        BB.solve
          ~params:{ par_params with deterministic = false }
          (build_random_milp inst)
      in
      (* Timing decides which optimal point wins, but with an exhausted
         search the optimal value is unique. *)
      match (seq.BB.best, par.BB.best) with
      | None, None -> true
      | Some (_, o1), Some (_, o2) -> Float.abs (o1 -. o2) < 1e-9
      | _ -> false)

(* A knapsack whose LP relaxation is fractional at the root, so a 1-node
   ramp is guaranteed to leave a frontier for the pool. *)
let frontier_model () =
  let m = Model.create () in
  let n = 10 in
  let v i = float_of_int (n - i) and w i = float_of_int (2 + ((3 * i) mod 7)) in
  let bs = List.init n (fun i -> Model.add_binary m (Printf.sprintf "b%d" i)) in
  Model.add_constr m
    (Expr.sum (List.mapi (fun i b -> Expr.(w i * var b)) bs))
    Model.Le (Expr.const 13.);
  Model.set_objective m `Maximize
    (Expr.sum (List.mapi (fun i b -> Expr.(v i * var b)) bs));
  m

let test_parallel_stats_cover_all_domains () =
  let out = BB.solve ~params:par_params (frontier_model ()) in
  Alcotest.(check int) "one slice per domain" 4
    (Array.length out.BB.per_domain);
  let sum f = Array.fold_left (fun a w -> a + f w) 0 out.BB.per_domain in
  Alcotest.(check int) "nodes = sum of slices" out.BB.nodes
    (sum (fun w -> w.BB.d_nodes));
  Alcotest.(check int) "lp_solves = sum of slices" out.BB.lp_solves
    (sum (fun w -> w.BB.d_lp_solves));
  Alcotest.(check bool) "frontier was used" true (out.BB.frontier_tasks > 0);
  Alcotest.(check bool) "at least one wave" true (out.BB.waves >= 1)

let test_shared_pool_reused () =
  (* Several solves through one caller-owned pool, interleaved with
     sequential solves, all agreeing. *)
  Fp_util.Pool.with_pool ~jobs:3 (fun pool ->
      for seed = 1 to 5 do
        let inst =
          (5, 1., [ ([ 1.; 2.; 1.; 2.; 1.; 1. ], float_of_int (seed + 2)) ])
        in
        let seq = BB.solve (build_random_milp inst) in
        let par =
          BB.solve ~params:{ BB.default_params with ramp_nodes = 1 } ~pool
            (build_random_milp inst)
        in
        let _, o1 = best_exn seq and _, o2 = best_exn par in
        checkf (Printf.sprintf "seed %d objective" seed) o1 o2
      done)

let () =
  Alcotest.run "fp_milp"
    [
      ( "expr",
        [
          Alcotest.test_case "algebra" `Quick test_expr_algebra;
          Alcotest.test_case "zero coeffs dropped" `Quick
            test_expr_zero_coeffs_dropped;
          Alcotest.test_case "sum and neg" `Quick test_expr_sum_neg;
        ] );
      ( "model",
        [
          Alcotest.test_case "integrality bookkeeping" `Quick
            test_model_integrality_bookkeeping;
          Alcotest.test_case "pair validation" `Quick test_model_pair_validation;
          Alcotest.test_case "integral / round" `Quick
            test_model_integral_and_round;
          Alcotest.test_case "objective constant" `Quick
            test_model_objective_constant;
        ] );
      ( "branch_bound",
        [
          Alcotest.test_case "knapsack" `Quick test_knapsack;
          Alcotest.test_case "integrality gap" `Quick test_integrality_gap;
          Alcotest.test_case "general integer" `Quick test_general_integer;
          Alcotest.test_case "infeasible" `Quick test_infeasible_milp;
          Alcotest.test_case "unbounded" `Quick test_unbounded_milp;
          Alcotest.test_case "pure LP" `Quick test_pure_lp_through_bb;
          Alcotest.test_case "warm start accepted" `Quick
            test_warm_start_accepted;
          Alcotest.test_case "warm start rejected" `Quick
            test_warm_start_rejected;
          Alcotest.test_case "node limit -> feasible" `Quick
            test_node_limit_returns_feasible;
          Alcotest.test_case "constr or bound" `Quick
            test_constr_or_bound_folds_singletons;
          Alcotest.test_case "budget accounting exact" `Quick
            test_budget_accounting_exact;
          Alcotest.test_case "pure LP single solve" `Quick
            test_pure_lp_single_solve;
          Alcotest.test_case "zero node limit" `Quick test_zero_node_limit;
          Alcotest.test_case "warm hits + ablation" `Quick
            test_warm_lp_hits_and_ablation;
          Alcotest.test_case "pair branching" `Quick test_pair_branching_used;
          Alcotest.test_case "branch rules agree" `Quick test_branch_rules_agree;
          QCheck_alcotest.to_alcotest test_bb_matches_brute_force;
          QCheck_alcotest.to_alcotest test_bb_solutions_integral;
        ] );
      ( "parallel",
        [
          QCheck_alcotest.to_alcotest
            test_parallel_deterministic_matches_sequential;
          QCheck_alcotest.to_alcotest test_parallel_free_running_optimal;
          Alcotest.test_case "per-domain stats" `Quick
            test_parallel_stats_cover_all_domains;
          Alcotest.test_case "shared pool" `Quick test_shared_pool_reused;
        ] );
    ]
