(* Tests for the engine abstraction layer: the Outline knob, the Solver
   scenario/context contract, bit-identity of the refactored MILP and SA
   backends against their direct drivers, certification of the
   projection backend, and the portfolio racer's determinism across
   worker counts. *)

module Generator = Fp_netlist.Generator
module Netlist = Fp_netlist.Netlist
module BB = Fp_milp.Branch_bound
module Anneal = Fp_slicing.Anneal
module Solver = Fp_engine.Solver
module Milp_engine = Fp_engine.Milp_engine
module Sa_engine = Fp_engine.Sa_engine
module Project = Fp_engine.Project
module Portfolio = Fp_engine.Portfolio
open Fp_core

let gen ~n ~seed =
  Generator.generate
    { Generator.default_config with Generator.num_modules = n; seed }

let small_milp_cfg =
  { Augment.default_config with
    Augment.group_size = 3;
    milp = { Augment.default_config.Augment.milp with BB.node_limit = 300 } }

let small_sa_cfg = { Anneal.default_config with Anneal.stages = 30 }

let engines () =
  [
    Milp_engine.make ~config:small_milp_cfg ();
    Sa_engine.make ~config:small_sa_cfg ();
    Project.solver;
  ]

let scenario seed = { Solver.default_scenario with Solver.seed = seed }

let solve_one s sc nl =
  let ctx = Solver.of_scenario sc in
  s.Solver.solve ctx sc nl

let stats (o : Solver.outcome) = o.Solver.stats

let has_deg p (o : Solver.outcome) =
  List.exists (fun (_, d) -> p d) (stats o).Solver.degradations

(* ------------------------------ outline ------------------------------ *)

let test_outline_limits () =
  Alcotest.(check (option (float 1e-9)))
    "free width" None
    (Outline.width_limit Outline.Free);
  Alcotest.(check (option (float 1e-9)))
    "max width" (Some 25.)
    (Outline.width_limit (Outline.Max_width 25.));
  Alcotest.(check (option (float 1e-9)))
    "max width no height" None
    (Outline.height_limit (Outline.Max_width 25.));
  let fixed = Outline.Fixed { w = 10.; h = 5. } in
  Alcotest.(check (option (float 1e-9)))
    "fixed width" (Some 10.) (Outline.width_limit fixed);
  Alcotest.(check (option (float 1e-9)))
    "fixed height" (Some 5.) (Outline.height_limit fixed)

let test_outline_excess () =
  let o = Outline.Fixed { w = 10.; h = 5. } in
  Alcotest.(check (float 1e-9)) "fits" 0. (Outline.excess o ~w:10. ~h:5.);
  Alcotest.(check (float 1e-9)) "wide" 2. (Outline.excess o ~w:12. ~h:4.);
  Alcotest.(check (float 1e-9))
    "worst axis" 3.
    (Outline.excess o ~w:12. ~h:8.);
  Alcotest.(check bool) "fits pred" true (Outline.fits o ~w:10. ~h:5.);
  Alcotest.(check bool) "overflow pred" false (Outline.fits o ~w:10.1 ~h:5.);
  Alcotest.(check bool) "free always fits" true
    (Outline.fits Outline.Free ~w:1e9 ~h:1e9)

(* --------------------- backend bit-identity --------------------- *)

(* The tentpole contract: putting Augment behind the Solver interface
   with an all-default scenario must not change the floorplan. *)
let test_milp_engine_matches_augment () =
  let nl = gen ~n:8 ~seed:4 in
  let res = Augment.run ~config:small_milp_cfg nl in
  let direct =
    let pl = Compact.vertical res.Augment.placement in
    fst (Topology.optimize ~linearization:small_milp_cfg.Augment.linearization
           nl pl)
  in
  let o = solve_one (Milp_engine.make ~config:small_milp_cfg ()) (scenario 1990) nl in
  match o.Solver.plan with
  | None -> Alcotest.fail "milp engine returned no plan"
  | Some pl ->
    Alcotest.(check bool) "identical plan" true (pl = direct);
    Alcotest.(check bool) "certified" true (stats o).Solver.certified

(* Same for the annealer: the scenario seed must reproduce a direct
   Anneal.run with that seed, bit for bit. *)
let test_sa_engine_matches_anneal () =
  let nl = gen ~n:10 ~seed:3 in
  let cfg = { small_sa_cfg with Anneal.seed = 11 } in
  let direct, _ = Anneal.run ~config:cfg nl in
  let o = solve_one (Sa_engine.make ~config:small_sa_cfg ()) (scenario 11) nl in
  match o.Solver.plan with
  | None -> Alcotest.fail "sa engine returned no plan"
  | Some pl ->
    Alcotest.(check bool) "identical plan" true (pl = direct);
    Alcotest.(check bool) "certified" true (stats o).Solver.certified

let test_engine_deterministic () =
  let nl = gen ~n:9 ~seed:8 in
  List.iter
    (fun s ->
      let a = solve_one s (scenario 21) nl and b = solve_one s (scenario 21) nl in
      Alcotest.(check bool)
        (s.Solver.name ^ " plan replays") true
        (a.Solver.plan = b.Solver.plan))
    (engines ())

(* ------------------------- projection engine ------------------------- *)

let test_project_certifies_ami33 () =
  let nl = Fp_data.Ami33.netlist () in
  let o = solve_one Project.solver (scenario 1990) nl in
  Alcotest.(check bool) "certified" true (stats o).Solver.certified;
  match o.Solver.plan with
  | None -> Alcotest.fail "no plan"
  | Some pl ->
    Alcotest.(check int) "all placed" (Netlist.num_modules nl)
      (Placement.num_placed pl);
    Alcotest.(check bool) "valid" true (Placement.valid pl = Ok ())

let test_project_certifies_generated () =
  let nl = gen ~n:14 ~seed:6 in
  let o = solve_one Project.solver (scenario 6) nl in
  Alcotest.(check bool) "certified" true (stats o).Solver.certified;
  match o.Solver.plan with
  | None -> Alcotest.fail "no plan"
  | Some pl ->
    Alcotest.(check int) "all placed" (Netlist.num_modules nl)
      (Placement.num_placed pl)

let test_project_fixed_outline_feasible () =
  let nl = Fp_data.Ami33.netlist () in
  let sc =
    { (scenario 1990) with Solver.outline = Outline.Fixed { w = 140.; h = 130. } }
  in
  let o = solve_one Project.solver sc nl in
  Alcotest.(check bool) "certified inside outline" true
    (stats o).Solver.certified

(* An impossible outline (smaller than the total silicon area) must
   still yield a valid plan, uncertified, with the overshoot recorded —
   never an exception or a silent pass. *)
let test_project_outline_degradation () =
  let nl = Fp_data.Ami33.netlist () in
  let sc =
    { (scenario 1990) with Solver.outline = Outline.Fixed { w = 125.; h = 90. } }
  in
  let o = solve_one Project.solver sc nl in
  Alcotest.(check bool) "not certified" false (stats o).Solver.certified;
  Alcotest.(check bool) "overshoot recorded" true
    (has_deg (function Degradation.Outline_exceeded _ -> true | _ -> false) o);
  match o.Solver.plan with
  | None -> Alcotest.fail "no plan"
  | Some pl ->
    Alcotest.(check bool) "plan still valid" true (Placement.valid pl = Ok ())

(* --------------------------- deadline knob --------------------------- *)

let test_sa_deadline_truncates () =
  let nl = gen ~n:12 ~seed:2 in
  let sc = { (scenario 3) with Solver.time_budget = Some 0.005 } in
  let o = solve_one (Sa_engine.make ()) sc nl in
  Alcotest.(check bool) "plan exists" true (o.Solver.plan <> None);
  Alcotest.(check bool) "truncation recorded" true
    (has_deg (( = ) Degradation.Deadline_truncated) o);
  Alcotest.(check bool) "incomplete" false (stats o).Solver.complete

(* ----------------------------- portfolio ----------------------------- *)

let winner_name r =
  match r.Portfolio.winner with
  | Some w -> w.Portfolio.solver_name
  | None -> "none"

let winner_plan r =
  match r.Portfolio.winner with
  | Some w -> w.Portfolio.outcome.Solver.plan
  | None -> None

(* Best_certified with no time budget: winner identity, winner plan and
   every per-engine objective must be identical for jobs = 1, 2, 3. *)
let test_portfolio_deterministic_across_jobs () =
  let nl = gen ~n:8 ~seed:5 in
  let sc = scenario 7 in
  let run jobs = Portfolio.race ~jobs ~engines:(engines ()) ~scenario:sc nl in
  let r1 = run 1 and r2 = run 2 and r3 = run 3 in
  Alcotest.(check string) "winner 1=2" (winner_name r1) (winner_name r2);
  Alcotest.(check string) "winner 1=3" (winner_name r1) (winner_name r3);
  Alcotest.(check bool) "plan 1=2" true (winner_plan r1 = winner_plan r2);
  Alcotest.(check bool) "plan 1=3" true (winner_plan r1 = winner_plan r3);
  List.iter2
    (fun (a : Portfolio.entry) (b : Portfolio.entry) ->
      Alcotest.(check string) "entry order" a.Portfolio.solver_name
        b.Portfolio.solver_name;
      Alcotest.(check (float 1e-9))
        (a.Portfolio.solver_name ^ " objective")
        a.Portfolio.outcome.Solver.stats.Solver.objective
        b.Portfolio.outcome.Solver.stats.Solver.objective)
    r1.Portfolio.entries r2.Portfolio.entries

let test_portfolio_picks_lowest_objective () =
  let nl = gen ~n:8 ~seed:5 in
  let r = Portfolio.race ~engines:(engines ()) ~scenario:(scenario 7) nl in
  match r.Portfolio.winner with
  | None -> Alcotest.fail "no winner"
  | Some w ->
    Alcotest.(check bool) "winner certified" true
      w.Portfolio.outcome.Solver.stats.Solver.certified;
    List.iter
      (fun (e : Portfolio.entry) ->
        if e.Portfolio.outcome.Solver.stats.Solver.certified then
          Alcotest.(check bool)
            ("winner <= " ^ e.Portfolio.solver_name)
            true
            (w.Portfolio.outcome.Solver.stats.Solver.objective
             <= e.Portfolio.outcome.Solver.stats.Solver.objective +. 1e-9))
      r.Portfolio.entries

let test_portfolio_first_certified () =
  let nl = gen ~n:8 ~seed:5 in
  let r =
    Portfolio.race ~policy:Portfolio.First_certified ~engines:(engines ())
      ~scenario:(scenario 7) nl
  in
  match r.Portfolio.winner with
  | None -> Alcotest.fail "no winner"
  | Some w ->
    Alcotest.(check bool) "certified" true
      w.Portfolio.outcome.Solver.stats.Solver.certified

let test_portfolio_survives_engine_failure () =
  let boom =
    { Solver.name = "boom";
      solve = (fun _ _ _ -> failwith "synthetic engine crash") }
  in
  let nl = gen ~n:6 ~seed:9 in
  let r =
    Portfolio.race ~engines:[ boom; Project.solver ] ~scenario:(scenario 9) nl
  in
  Alcotest.(check string) "project wins" "project" (winner_name r);
  let boom_entry = List.hd r.Portfolio.entries in
  Alcotest.(check bool) "failure recorded" true
    (List.exists
       (fun (_, d) ->
         match d with Degradation.Engine_failed _ -> true | _ -> false)
       boom_entry.Portfolio.outcome.Solver.stats.Solver.degradations)

let test_portfolio_rejects_empty () =
  Alcotest.check_raises "empty engines"
    (Invalid_argument "Portfolio.race: no engines") (fun () ->
      ignore (Portfolio.race ~engines:[] ~scenario:(scenario 1) (gen ~n:3 ~seed:1)))

(* ------------------------ end-to-end property ------------------------ *)

let test_any_engine_certifies =
  QCheck.Test.make ~name:"every engine's plan passes certification" ~count:9
    QCheck.(pair (int_range 0 2) (int_range 0 99))
    (fun (which, seed) ->
      let nl = gen ~n:(5 + (seed mod 4)) ~seed in
      let s = List.nth (engines ()) which in
      let o = solve_one s (scenario seed) nl in
      (stats o).Solver.certified
      &&
      match o.Solver.plan with
      | Some pl -> Placement.valid pl = Ok ()
      | None -> false)

let () =
  Alcotest.run "fp_engine"
    [
      ( "outline",
        [
          Alcotest.test_case "limits" `Quick test_outline_limits;
          Alcotest.test_case "excess" `Quick test_outline_excess;
        ] );
      ( "backends",
        [
          Alcotest.test_case "milp bit-identical" `Quick
            test_milp_engine_matches_augment;
          Alcotest.test_case "sa bit-identical" `Quick
            test_sa_engine_matches_anneal;
          Alcotest.test_case "deterministic replay" `Quick
            test_engine_deterministic;
          Alcotest.test_case "sa deadline truncates" `Quick
            test_sa_deadline_truncates;
        ] );
      ( "project",
        [
          Alcotest.test_case "certifies ami33" `Quick
            test_project_certifies_ami33;
          Alcotest.test_case "certifies generated" `Quick
            test_project_certifies_generated;
          Alcotest.test_case "feasible fixed outline" `Quick
            test_project_fixed_outline_feasible;
          Alcotest.test_case "outline degradation" `Quick
            test_project_outline_degradation;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_portfolio_deterministic_across_jobs;
          Alcotest.test_case "picks lowest objective" `Quick
            test_portfolio_picks_lowest_objective;
          Alcotest.test_case "first certified" `Quick
            test_portfolio_first_certified;
          Alcotest.test_case "survives engine failure" `Quick
            test_portfolio_survives_engine_failure;
          Alcotest.test_case "rejects empty" `Quick test_portfolio_rejects_empty;
          QCheck_alcotest.to_alcotest test_any_engine_certifies;
        ] );
    ]
