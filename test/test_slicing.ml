(* Tests for Fp_slicing: normalized Polish expressions and their moves,
   shape curves, realization, and the simulated-annealing driver. *)

module Rect = Fp_geometry.Rect
module Module_def = Fp_netlist.Module_def
module Netlist = Fp_netlist.Netlist
module Generator = Fp_netlist.Generator
module Polish = Fp_slicing.Polish
module Shape = Fp_slicing.Shape
module Anneal = Fp_slicing.Anneal
module Placement = Fp_core.Placement

let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

let expr_str e = Format.asprintf "%a" Polish.pp e

(* ------------------------------ Polish ------------------------------ *)

let test_initial_expression () =
  let e = Polish.of_modules 4 in
  Alcotest.(check string) "canonical" "0 1 V 2 V 3 V" (expr_str e);
  Alcotest.(check bool) "valid" true (Polish.is_valid e);
  Alcotest.(check int) "modules" 4 (Polish.num_modules e)

let test_single_module () =
  let e = Polish.of_modules 1 in
  Alcotest.(check string) "just the operand" "0" (expr_str e);
  Alcotest.(check bool) "valid" true (Polish.is_valid e)

let test_m1_swaps_operands () =
  let e = Polish.of_modules 3 in
  let e' = Polish.apply_m1 e 0 in
  Alcotest.(check string) "swapped" "1 0 V 2 V" (expr_str e');
  Alcotest.(check bool) "still valid" true (Polish.is_valid e');
  Alcotest.(check int) "m1 candidate count" 2
    (List.length (Polish.m1_candidates e))

let test_m2_complements_chain () =
  let e = Polish.of_modules 3 in
  (* chains: the V after 1, and the V after 2. *)
  Alcotest.(check int) "two chains" 2 (Polish.num_operator_chains e);
  let e' = Polish.apply_m2 e 0 in
  Alcotest.(check string) "first chain flipped" "0 1 H 2 V" (expr_str e');
  Alcotest.(check bool) "still valid" true (Polish.is_valid e')

let test_m3_preserves_validity () =
  let e = Polish.of_modules 4 in
  List.iter
    (fun p ->
      let e' = Polish.apply_m3 e p in
      Alcotest.(check bool)
        (Printf.sprintf "m3 at %d valid" p)
        true (Polish.is_valid e'))
    (Polish.m3_candidates e)

let test_m3_rejects_bad_position () =
  let e = Polish.of_modules 2 in
  (* Position 0 would put the operator first: invalid. *)
  Alcotest.(check bool) "raises" true
    (try
       ignore (Polish.apply_m3 e 1);
       (* swapping (1, V) at position 1 gives "0 V 1": invalid. *)
       false
     with Invalid_argument _ -> true)

let test_random_walk_stays_valid =
  QCheck.Test.make ~name:"random move walks keep expressions valid" ~count:60
    QCheck.(pair (int_range 2 9) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Fp_util.Rng.create seed in
      let e = ref (Polish.of_modules n) in
      let ok = ref true in
      for _ = 1 to 40 do
        (match Fp_util.Rng.int rng 3 with
        | 0 ->
          let c = Polish.m1_candidates !e in
          if c <> [] then
            e := Polish.apply_m1 !e (Fp_util.Rng.int rng (List.length c))
        | 1 ->
          let c = Polish.num_operator_chains !e in
          if c > 0 then e := Polish.apply_m2 !e (Fp_util.Rng.int rng c)
        | _ ->
          let c = Polish.m3_candidates !e in
          if c <> [] then
            e := Polish.apply_m3 !e
                (List.nth c (Fp_util.Rng.int rng (List.length c))));
        if not (Polish.is_valid !e) then ok := false
      done;
      !ok)

(* ------------------------------ Shape ------------------------------- *)

let rigid id w h = Module_def.rigid ~id ~name:(Printf.sprintf "m%d" id) ~w ~h

let test_leaf_options_rigid () =
  Alcotest.(check int) "two orientations" 2
    (List.length (Shape.leaf_options (rigid 0 4. 2.)));
  Alcotest.(check int) "square has one" 1
    (List.length (Shape.leaf_options (rigid 0 3. 3.)))

let test_leaf_options_flexible () =
  let f =
    Module_def.flexible ~id:0 ~name:"f" ~area:16. ~min_aspect:0.25
      ~max_aspect:4.
  in
  let opts = Shape.leaf_options ~samples:5 f in
  Alcotest.(check int) "sample count" 5 (List.length opts);
  List.iter (fun (w, h) -> checkf "exact area" 16. (w *. h)) opts

let test_shape_two_modules () =
  (* 0: 4x2, 1: 4x2; "0 1 V" side by side: best (w8, h2) or rotated
     variants; "0 1 H": stack: 4x4. *)
  let options_of m = Shape.leaf_options (rigid m 4. 2.) in
  let v = Polish.of_modules 2 in
  let sized = Shape.size v options_of in
  let _, h = Shape.best_area sized in
  (* Best area over {8x2=16, 6x4=24(mixed), 4x4=16(both rotated)}: 16. *)
  let w0, h0 = Shape.best_area sized in
  checkf "best area 16" 16. (w0 *. h0);
  ignore h

let test_frontier_pareto () =
  let options_of m = Shape.leaf_options (rigid m (4. +. float_of_int m) 2.) in
  let sized = Shape.size (Polish.of_modules 3) options_of in
  let f = Shape.frontier sized in
  let rec strictly_improving = function
    | (w1, h1) :: ((w2, h2) :: _ as rest) ->
      w1 < w2 && h1 > h2 && strictly_improving rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "widths increase, heights decrease" true
    (strictly_improving f)

let test_realize_no_overlap () =
  let defs =
    [| rigid 0 4. 2.; rigid 1 3. 3.; rigid 2 2. 5.;
       Module_def.flexible ~id:3 ~name:"f" ~area:12. ~min_aspect:0.5
         ~max_aspect:2. |]
  in
  let options_of m = Shape.leaf_options defs.(m) in
  let e =
    Polish.of_modules 4 |> Fun.flip Polish.apply_m2 0
    |> Fun.flip Polish.apply_m1 1
  in
  let sized = Shape.size e options_of in
  let rects, w, h = Shape.realize sized in
  Alcotest.(check int) "all modules" 4 (List.length rects);
  List.iteri
    (fun i (_, a, _) ->
      Alcotest.(check bool) "inside chip" true
        (a.Rect.x >= -1e-6 && a.Rect.y >= -1e-6
         && Rect.x_max a <= w +. 1e-6
         && Rect.y_max a <= h +. 1e-6);
      List.iteri
        (fun j (_, b, _) ->
          if j > i then
            Alcotest.(check bool) "no overlap" false (Rect.overlaps a b))
        rects)
    rects

let test_realize_width_limit () =
  (* Two 6x2 modules under a horizontal cut ("0 1 H"): realizations are
     the 6x4 stack or rotated variants.  Width limit 7 admits the 6x4
     stack. *)
  let options_of m = Shape.leaf_options (rigid m 6. 2.) in
  let expr = Polish.apply_m2 (Polish.of_modules 2) 0 in
  let sized = Shape.size expr options_of in
  let _, w, h = Shape.realize ~width_limit:7. sized in
  Alcotest.(check bool) "fits the limit" true (w <= 7. +. 1e-6);
  checkf "stacked height" 4. h

let test_realize_area_matches_curve () =
  let options_of m = Shape.leaf_options (rigid m 5. 3.) in
  let sized = Shape.size (Polish.of_modules 3) options_of in
  let bw, bh = Shape.best_area sized in
  let _, w, h = Shape.realize sized in
  checkf "same w" bw w;
  checkf "same h" bh h

(* ------------------------------ Anneal ------------------------------ *)

let test_anneal_valid_and_improves () =
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 10; seed = 31 }
  in
  let pl, stats = Anneal.run nl in
  Alcotest.(check bool) "valid" true (Placement.valid pl = Ok ());
  Alcotest.(check int) "all placed" 10 (Placement.num_placed pl);
  Alcotest.(check bool) "no worse than initial" true
    (stats.Anneal.best_cost <= stats.Anneal.initial_cost +. 1e-6);
  Alcotest.(check bool) "did some work" true (stats.Anneal.iterations > 100)

let test_anneal_deterministic () =
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 8; seed = 32 }
  in
  let cfg = { Anneal.default_config with Anneal.stages = 15 } in
  let _, a = Anneal.run ~config:cfg nl in
  let _, b = Anneal.run ~config:cfg nl in
  checkf "same best cost" a.Anneal.best_cost b.Anneal.best_cost

let test_anneal_width_limit () =
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 8; seed = 33 }
  in
  let cfg =
    { Anneal.default_config with
      Anneal.outline = Fp_core.Outline.Max_width 70.; stages = 20 }
  in
  let pl, _ = Anneal.run ~config:cfg nl in
  (* The realization prefers shapes fitting the limit when any exist. *)
  Alcotest.(check bool) "reasonable width" true
    (pl.Placement.chip_width <= 140.);
  Alcotest.(check bool) "valid" true (Placement.valid pl = Ok ())

let test_anneal_wire_weight_reduces_hpwl () =
  let nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 10; seed = 34 }
  in
  let area_only, _ =
    Anneal.run ~config:{ Anneal.default_config with Anneal.stages = 30 } nl
  in
  let with_wire, _ =
    Anneal.run
      ~config:{ Anneal.default_config with Anneal.stages = 30; wire_weight = 2. }
      nl
  in
  (* Not a strict theorem, but with substantial weight the optimizer
     should not produce dramatically *worse* wirelength. *)
  Alcotest.(check bool) "wire-aware HPWL not much worse" true
    (Fp_core.Metrics.hpwl nl with_wire
     <= (1.15 *. Fp_core.Metrics.hpwl nl area_only) +. 1e-6)

let test_anneal_single_module () =
  let nl = Netlist.create ~name:"one" [ rigid 0 4. 2. ] [] in
  let pl, _ = Anneal.run nl in
  checkf "area" 8. (Placement.chip_area pl)

let () =
  Alcotest.run "fp_slicing"
    [
      ( "polish",
        [
          Alcotest.test_case "initial" `Quick test_initial_expression;
          Alcotest.test_case "single module" `Quick test_single_module;
          Alcotest.test_case "m1" `Quick test_m1_swaps_operands;
          Alcotest.test_case "m2" `Quick test_m2_complements_chain;
          Alcotest.test_case "m3 validity" `Quick test_m3_preserves_validity;
          Alcotest.test_case "m3 rejects" `Quick test_m3_rejects_bad_position;
          QCheck_alcotest.to_alcotest test_random_walk_stays_valid;
        ] );
      ( "shape",
        [
          Alcotest.test_case "rigid options" `Quick test_leaf_options_rigid;
          Alcotest.test_case "flexible options" `Quick test_leaf_options_flexible;
          Alcotest.test_case "two modules" `Quick test_shape_two_modules;
          Alcotest.test_case "pareto frontier" `Quick test_frontier_pareto;
          Alcotest.test_case "realize no overlap" `Quick test_realize_no_overlap;
          Alcotest.test_case "width limit" `Quick test_realize_width_limit;
          Alcotest.test_case "realize matches curve" `Quick
            test_realize_area_matches_curve;
        ] );
      ( "anneal",
        [
          Alcotest.test_case "valid and improves" `Quick
            test_anneal_valid_and_improves;
          Alcotest.test_case "deterministic" `Quick test_anneal_deterministic;
          Alcotest.test_case "width limit" `Quick test_anneal_width_limit;
          Alcotest.test_case "wire weight" `Quick
            test_anneal_wire_weight_reduces_hpwl;
          Alcotest.test_case "single module" `Quick test_anneal_single_module;
        ] );
    ]
