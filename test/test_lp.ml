(* Tests for Fp_lp: the model builder, the two-phase bounded-variable
   simplex, and the LP-format writer.  Includes a brute-force 2-D vertex
   enumeration cross-check of optimality. *)

module Lp = Fp_lp.Lp_problem
module Simplex = Fp_lp.Simplex
module Lp_io = Fp_lp.Lp_io

let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

let solve_opt p =
  match Simplex.solve p with
  | Simplex.Optimal { x; obj } -> (x, obj)
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Simplex.Iteration_limit -> Alcotest.fail "unexpected iteration limit"

(* ------------------------- model builder --------------------------- *)

let test_builder_basics () =
  let p = Lp.create ~name:"m" () in
  let x = Lp.add_var p ~lb:1. ~ub:5. ~obj:2. "x" in
  let y = Lp.add_var p "y" in
  Lp.add_constr p [ (1., x); (2., y) ] Lp.Le 10.;
  Alcotest.(check int) "vars" 2 (Lp.num_vars p);
  Alcotest.(check int) "constrs" 1 (Lp.num_constrs p);
  Alcotest.(check string) "name" "x" (Lp.var_name p x);
  checkf "lb" 1. (Lp.var_lb p x);
  checkf "ub" 5. (Lp.var_ub p x);
  checkf "obj" 2. (Lp.obj_coeff p x)

let test_builder_duplicate_terms () =
  let p = Lp.create () in
  let x = Lp.add_var p "x" in
  Lp.add_constr p [ (1., x); (2., x) ] Lp.Eq 6.;
  Lp.set_obj_coeff p x 1.;
  let sol, obj = solve_opt p in
  checkf "merged coefficients" 2. sol.(x);
  checkf "objective" 2. obj

let test_builder_bad_var () =
  let p = Lp.create () in
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Lp_problem.add_constr: unknown variable 3") (fun () ->
      Lp.add_constr p [ (1., 3) ] Lp.Le 1.)

let test_builder_bad_bounds () =
  let p = Lp.create () in
  Alcotest.check_raises "ub < lb"
    (Invalid_argument "Lp_problem.add_var x: ub (0) < lb (1)") (fun () ->
      ignore (Lp.add_var p ~lb:1. ~ub:0. "x"))

let test_tighten_bounds () =
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:1. ~ub:5. "x" in
  Alcotest.(check bool) "tightens" true
    (Lp.tighten_bounds p x ~lb:2. ~ub:7.);
  checkf "lb" 2. (Lp.var_lb p x);
  checkf "ub" 5. (Lp.var_ub p x);
  Alcotest.(check bool) "empty refused" false
    (Lp.tighten_bounds p x ~lb:6. ~ub:8.);
  checkf "lb untouched" 2. (Lp.var_lb p x);
  checkf "ub untouched" 5. (Lp.var_ub p x)

let test_violation () =
  let p = Lp.create () in
  let x = Lp.add_var p ~ub:2. "x" in
  Lp.add_constr p [ (1., x) ] Lp.Ge 1.;
  checkf "feasible point" 0. (Lp.constraint_violation p [| 1.5 |]);
  checkf "bound violated" 1. (Lp.constraint_violation p [| 3. |]);
  checkf "row violated" 0.5 (Lp.constraint_violation p [| 0.5 |])

(* --------------------------- known LPs ------------------------------ *)

let test_textbook_max () =
  (* max 3x + 5y; x <= 4; 2y <= 12; 3x + 2y <= 18. Optimum (2, 6) -> 36. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~obj:3. "x" in
  let y = Lp.add_var p ~obj:5. "y" in
  Lp.set_sense p Lp.Maximize;
  Lp.add_constr p [ (1., x) ] Lp.Le 4.;
  Lp.add_constr p [ (2., y) ] Lp.Le 12.;
  Lp.add_constr p [ (3., x); (2., y) ] Lp.Le 18.;
  let sol, obj = solve_opt p in
  checkf "obj" 36. obj;
  checkf "x" 2. sol.(x);
  checkf "y" 6. sol.(y)

let test_degenerate_lp () =
  (* Degenerate vertex: several constraints meet at the optimum. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~obj:(-1.) "x" in
  let y = Lp.add_var p ~obj:(-1.) "y" in
  Lp.add_constr p [ (1., x); (1., y) ] Lp.Le 1.;
  Lp.add_constr p [ (1., x) ] Lp.Le 1.;
  Lp.add_constr p [ (1., y) ] Lp.Le 1.;
  Lp.add_constr p [ (1., x); (1., y) ] Lp.Le 1.;
  let _, obj = solve_opt p in
  checkf "obj" (-1.) obj

let test_equality_system () =
  (* x + y = 3; x - y = -1 -> (1, 2). *)
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:neg_infinity ~obj:1. "x" in
  let y = Lp.add_var p ~obj:1. "y" in
  Lp.add_constr p [ (1., x); (1., y) ] Lp.Eq 3.;
  Lp.add_constr p [ (1., x); (-1., y) ] Lp.Eq (-1.);
  let sol, _ = solve_opt p in
  checkf "x" 1. sol.(x);
  checkf "y" 2. sol.(y)

let test_free_variable () =
  (* min x st x >= -7, via free variable and a Ge row. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:neg_infinity ~obj:1. "x" in
  Lp.add_constr p [ (1., x) ] Lp.Ge (-7.);
  let sol, obj = solve_opt p in
  checkf "x" (-7.) sol.(x);
  checkf "obj" (-7.) obj

let test_upper_bounded_only () =
  (* max x with x <= 3 as a pure bound, lb = -inf. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:neg_infinity ~ub:3. ~obj:1. "x" in
  Lp.set_sense p Lp.Maximize;
  let sol, obj = solve_opt p in
  checkf "x" 3. sol.(x);
  checkf "obj" 3. obj

let test_bound_flips () =
  (* Optimum rests on upper bounds; exercises the bound-flip path. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~ub:1. ~obj:(-1.) "x" in
  let y = Lp.add_var p ~ub:1. ~obj:(-2.) "y" in
  Lp.add_constr p [ (1., x); (1., y) ] Lp.Le 1.5;
  let sol, obj = solve_opt p in
  checkf "obj" (-2.5) obj;
  checkf "x" 0.5 sol.(x);
  checkf "y" 1. sol.(y)

let test_fixed_variable () =
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:2. ~ub:2. ~obj:1. "x" in
  let y = Lp.add_var p ~ub:4. ~obj:1. "y" in
  Lp.add_constr p [ (1., x); (1., y) ] Lp.Ge 5.;
  let sol, obj = solve_opt p in
  checkf "x fixed" 2. sol.(x);
  checkf "obj" 5. obj

let test_infeasible () =
  let p = Lp.create () in
  let x = Lp.add_var p "x" in
  Lp.add_constr p [ (1., x) ] Lp.Ge 5.;
  Lp.add_constr p [ (1., x) ] Lp.Le 3.;
  Alcotest.(check bool) "infeasible" true (Simplex.solve p = Simplex.Infeasible)

let test_infeasible_equalities () =
  let p = Lp.create () in
  let x = Lp.add_var p "x" in
  let y = Lp.add_var p "y" in
  Lp.add_constr p [ (1., x); (1., y) ] Lp.Eq 1.;
  Lp.add_constr p [ (2., x); (2., y) ] Lp.Eq 3.;
  Alcotest.(check bool) "inconsistent" true (Simplex.solve p = Simplex.Infeasible)

let test_unbounded () =
  let p = Lp.create () in
  let x = Lp.add_var p ~obj:1. "x" in
  let y = Lp.add_var p ~obj:(-1.) "y" in
  Lp.add_constr p [ (1., x); (-1., y) ] Lp.Le 0.;
  Alcotest.(check bool) "unbounded" true (Simplex.solve p = Simplex.Unbounded)

let test_empty_objective () =
  (* Pure feasibility problem. *)
  let p = Lp.create () in
  let x = Lp.add_var p "x" in
  Lp.add_constr p [ (1., x) ] Lp.Ge 2.;
  let sol, obj = solve_opt p in
  checkf "obj 0" 0. obj;
  Alcotest.(check bool) "feasible" true (sol.(x) >= 2. -. 1e-6)

let test_redundant_rows () =
  let p = Lp.create () in
  let x = Lp.add_var p ~obj:1. "x" in
  for _ = 1 to 5 do
    Lp.add_constr p [ (1., x) ] Lp.Ge 1.
  done;
  Lp.add_constr p [ (2., x) ] Lp.Ge 2.;
  let _, obj = solve_opt p in
  checkf "obj" 1. obj

let test_stats_populated () =
  let p = Lp.create () in
  let x = Lp.add_var p ~obj:1. "x" in
  Lp.add_constr p [ (1., x) ] Lp.Ge 3.;
  let _, stats = Simplex.solve_with_stats p in
  Alcotest.(check bool) "rows > 0" true (stats.Simplex.rows > 0);
  Alcotest.(check bool) "cols > 0" true (stats.Simplex.cols > 0)

(* ----------------- brute-force 2-D cross-check --------------------- *)

(* Enumerate candidate vertices of a 2-D LP: intersections of all pairs
   of constraint boundaries (including box bounds), filter feasible, and
   take the best objective.  Exact for non-degenerate bounded problems. *)
let brute_force_2d ~c1 ~c2 ~rows ~ub1 ~ub2 =
  (* Lines: a x + b y = r, from rows and the four bounds. *)
  let lines =
    rows
    @ [ (1., 0., 0.); (0., 1., 0.); (1., 0., ub1); (0., 1., ub2) ]
  in
  let feasible (x, y) =
    x >= -1e-7 && y >= -1e-7 && x <= ub1 +. 1e-7 && y <= ub2 +. 1e-7
    && List.for_all (fun (a, b, r) -> (a *. x) +. (b *. y) <= r +. 1e-7) rows
  in
  let best = ref infinity in
  List.iteri
    (fun i (a1, b1, r1) ->
      List.iteri
        (fun j (a2, b2, r2) ->
          if j > i then begin
            let det = (a1 *. b2) -. (a2 *. b1) in
            if Float.abs det > 1e-9 then begin
              let x = ((r1 *. b2) -. (r2 *. b1)) /. det in
              let y = ((a1 *. r2) -. (a2 *. r1)) /. det in
              if feasible (x, y) then begin
                let v = (c1 *. x) +. (c2 *. y) in
                if v < !best then best := v
              end
            end
          end)
        lines)
    lines;
  !best

let random_2d_lp_arb =
  (* Coefficients in small integers; constraints of the form
     a x + b y <= r with a, b >= 0 and r > 0, so (0,0) is feasible and the
     box keeps everything bounded. *)
  QCheck.make
    ~print:(fun (c1, c2, rows) ->
      Printf.sprintf "c=(%g,%g) rows=[%s]" c1 c2
        (String.concat "; "
           (List.map (fun (a, b, r) -> Printf.sprintf "%gx+%gy<=%g" a b r) rows)))
    QCheck.Gen.(
      triple
        (map (fun n -> float_of_int (n - 5)) (int_bound 10))
        (map (fun n -> float_of_int (n - 5)) (int_bound 10))
        (list_size (int_range 1 5)
           (map
              (fun (a, b, r) ->
                (float_of_int a, float_of_int b, float_of_int (r + 1)))
              (triple (int_bound 4) (int_bound 4) (int_bound 20)))))

let test_simplex_matches_brute_force =
  QCheck.Test.make ~name:"simplex = 2-D vertex enumeration" ~count:500
    random_2d_lp_arb (fun (c1, c2, rows) ->
      let ub1 = 25. and ub2 = 25. in
      let p = Lp.create () in
      let x = Lp.add_var p ~ub:ub1 ~obj:c1 "x" in
      let y = Lp.add_var p ~ub:ub2 ~obj:c2 "y" in
      List.iter (fun (a, b, r) -> Lp.add_constr p [ (a, x); (b, y) ] Lp.Le r) rows;
      match Simplex.solve p with
      | Simplex.Optimal { obj; x = sol } ->
        let expected = brute_force_2d ~c1 ~c2 ~rows ~ub1 ~ub2 in
        Float.abs (obj -. expected) < 1e-5
        && Lp.constraint_violation p sol < 1e-6
      | _ -> false)

let test_solution_always_feasible =
  QCheck.Test.make ~name:"optimal solutions satisfy all constraints"
    ~count:300 random_2d_lp_arb (fun (c1, c2, rows) ->
      let p = Lp.create () in
      let x = Lp.add_var p ~ub:50. ~obj:c1 "x" in
      let y = Lp.add_var p ~ub:50. ~obj:c2 "y" in
      List.iter (fun (a, b, r) -> Lp.add_constr p [ (a, x); (b, y) ] Lp.Le r) rows;
      match Simplex.solve p with
      | Simplex.Optimal { x = sol; _ } -> Lp.constraint_violation p sol < 1e-6
      | _ -> false)

(* ------------------------------ lp_io ------------------------------ *)

let test_lp_format_smoke () =
  let p = Lp.create ~name:"demo" () in
  let x = Lp.add_var p ~lb:1. ~ub:4. ~obj:3. "x" in
  let y = Lp.add_var p ~lb:neg_infinity ~obj:(-1.) "y!" in
  let z = Lp.add_var p ~lb:2. ~ub:2. "z" in
  let w = Lp.add_var p ~lb:neg_infinity ~ub:5. "w" in
  ignore z;
  ignore w;
  Lp.add_constr p ~name:"r1" [ (1., x); (2., y) ] Lp.Le 7.;
  Lp.add_constr p [ (1., x) ] Lp.Ge 1.;
  Lp.add_constr p [ (1., y) ] Lp.Eq 0.;
  let s = Lp_io.to_lp_format p in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "minimize" true (contains "Minimize");
  Alcotest.(check bool) "subject to" true (contains "Subject To");
  Alcotest.(check bool) "bounds" true (contains "Bounds");
  Alcotest.(check bool) "sanitized name" true (contains "y_");
  Alcotest.(check bool) "fixed var" true (contains "z = 2");
  Alcotest.(check bool) "free var line" true (contains "y_ free");
  Alcotest.(check bool) "half-bounded line" true (contains "-inf <= w <= 5");
  Alcotest.(check bool) "le row" true (contains "<= 7")

(* ---------------------- interval propagation ----------------------- *)

let test_propagate_tightens_and_restores () =
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:0. ~ub:10. "x" in
  let y = Lp.add_var p ~lb:0. ~ub:10. "y" in
  Lp.add_constr p [ (1., x); (1., y) ] Lp.Le 4.;
  (match Lp.propagate_bounds p with
  | `Ok undo ->
    checkf "x ub" 4. (Lp.var_ub p x);
    checkf "y ub" 4. (Lp.var_ub p y);
    Alcotest.(check int) "both touched" 2 (List.length undo);
    List.iter (fun (v, lb, ub) -> Lp.set_bounds p v ~lb ~ub) undo;
    checkf "x ub restored" 10. (Lp.var_ub p x);
    checkf "y ub restored" 10. (Lp.var_ub p y)
  | `Infeasible _ -> Alcotest.fail "unexpected infeasible")

let test_propagate_integral_snap () =
  (* 2b >= 1 forces lb(b) = 0.5; integral snapping rounds it to 1. *)
  let p = Lp.create () in
  let b = Lp.add_var p ~lb:0. ~ub:1. "b" in
  Lp.add_constr p [ (2., b) ] Lp.Ge 1.;
  (match Lp.propagate_bounds ~integral:(fun v -> v = b) p with
  | `Ok _ ->
    checkf "b fixed at 1" 1. (Lp.var_lb p b);
    checkf "b ub" 1. (Lp.var_ub p b)
  | `Infeasible _ -> Alcotest.fail "unexpected infeasible")

let test_propagate_detects_infeasible () =
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:0. ~ub:1. "x" in
  Lp.add_constr p [ (1., x) ] Lp.Ge 2.;
  (match Lp.propagate_bounds p with
  | `Ok _ -> Alcotest.fail "should be infeasible"
  | `Infeasible undo ->
    Alcotest.(check bool) "x recorded" true
      (List.exists (fun (v, _, _) -> v = x) undo))

let test_propagate_extra_rows () =
  (* The extra row is not part of the problem but still tightens. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:0. ~ub:10. "x" in
  let extra =
    [| { Lp.cname = "pool"; terms = [ (1., x) ]; cmp = Lp.Le; rhs = 3. } |]
  in
  (match Lp.propagate_bounds ~extra p with
  | `Ok _ ->
    checkf "x ub from pool row" 3. (Lp.var_ub p x);
    Alcotest.(check int) "no row added" 0 (Lp.num_constrs p)
  | `Infeasible _ -> Alcotest.fail "unexpected infeasible")

let test_propagate_chains_rows () =
  (* x <= 2 (row), then y <= x + 1 must give y <= 3 on the next sweep. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:0. ~ub:10. "x" in
  let y = Lp.add_var p ~lb:0. ~ub:10. "y" in
  Lp.add_constr p [ (1., x) ] Lp.Le 2.;
  Lp.add_constr p [ (1., y); (-1., x) ] Lp.Le 1.;
  (match Lp.propagate_bounds p with
  | `Ok _ -> checkf "y ub chained" 3. (Lp.var_ub p y)
  | `Infeasible _ -> Alcotest.fail "unexpected infeasible")

let test_objective_interval () =
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:1. ~ub:2. ~obj:2. "x" in
  let y = Lp.add_var p ~lb:0. ~ub:3. ~obj:(-1.) "y" in
  ignore x;
  ignore y;
  let lo, hi = Lp.objective_interval p in
  checkf "lo" (-1.) lo;
  checkf "hi" 4. hi

let () =
  Alcotest.run "fp_lp"
    [
      ( "builder",
        [
          Alcotest.test_case "basics" `Quick test_builder_basics;
          Alcotest.test_case "duplicate terms" `Quick test_builder_duplicate_terms;
          Alcotest.test_case "bad var" `Quick test_builder_bad_var;
          Alcotest.test_case "bad bounds" `Quick test_builder_bad_bounds;
          Alcotest.test_case "tighten bounds" `Quick test_tighten_bounds;
          Alcotest.test_case "violation" `Quick test_violation;
        ] );
      ( "propagate",
        [
          Alcotest.test_case "tightens and restores" `Quick
            test_propagate_tightens_and_restores;
          Alcotest.test_case "integral snap" `Quick test_propagate_integral_snap;
          Alcotest.test_case "detects infeasible" `Quick
            test_propagate_detects_infeasible;
          Alcotest.test_case "extra rows" `Quick test_propagate_extra_rows;
          Alcotest.test_case "chains rows" `Quick test_propagate_chains_rows;
          Alcotest.test_case "objective interval" `Quick test_objective_interval;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "degenerate" `Quick test_degenerate_lp;
          Alcotest.test_case "equalities" `Quick test_equality_system;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "upper bounded only" `Quick test_upper_bounded_only;
          Alcotest.test_case "bound flips" `Quick test_bound_flips;
          Alcotest.test_case "fixed variable" `Quick test_fixed_variable;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "infeasible equalities" `Quick
            test_infeasible_equalities;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "empty objective" `Quick test_empty_objective;
          Alcotest.test_case "redundant rows" `Quick test_redundant_rows;
          Alcotest.test_case "stats populated" `Quick test_stats_populated;
          QCheck_alcotest.to_alcotest test_simplex_matches_brute_force;
          QCheck_alcotest.to_alcotest test_solution_always_feasible;
        ] );
      ( "lp_io",
        [ Alcotest.test_case "format smoke" `Quick test_lp_format_smoke ] );
    ]
