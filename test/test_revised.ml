(* Tests for Fp_lp.Revised: deterministic known LPs, a qcheck oracle
   pitting the revised simplex against the legacy dense tableau solver
   on random bounded LPs, and warm-vs-cold equivalence on branched
   (bound-tightened) subproblems. *)

module Lp = Fp_lp.Lp_problem
module Simplex = Fp_lp.Simplex
module Revised = Fp_lp.Revised

let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

let solve_opt p =
  match Revised.solve p with
  | Revised.Optimal { x; obj; _ }, _ -> (x, obj)
  | Revised.Infeasible, _ -> Alcotest.fail "unexpected infeasible"
  | Revised.Unbounded, _ -> Alcotest.fail "unexpected unbounded"
  | Revised.Iteration_limit, _ -> Alcotest.fail "unexpected iteration limit"

(* --------------------------- known LPs ------------------------------ *)

let test_textbook_max () =
  (* max 3x + 5y; x <= 4; 2y <= 12; 3x + 2y <= 18. Optimum (2, 6) -> 36. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~obj:3. "x" in
  let y = Lp.add_var p ~obj:5. "y" in
  Lp.set_sense p Lp.Maximize;
  Lp.add_constr p [ (1., x) ] Lp.Le 4.;
  Lp.add_constr p [ (2., y) ] Lp.Le 12.;
  Lp.add_constr p [ (3., x); (2., y) ] Lp.Le 18.;
  let sol, obj = solve_opt p in
  checkf "obj" 36. obj;
  checkf "x" 2. sol.(x);
  checkf "y" 6. sol.(y)

let test_equality_system () =
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:neg_infinity ~obj:1. "x" in
  let y = Lp.add_var p ~obj:1. "y" in
  Lp.add_constr p [ (1., x); (1., y) ] Lp.Eq 3.;
  Lp.add_constr p [ (1., x); (-1., y) ] Lp.Eq (-1.);
  let sol, _ = solve_opt p in
  checkf "x" 1. sol.(x);
  checkf "y" 2. sol.(y)

let test_free_variable () =
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:neg_infinity ~obj:1. "x" in
  Lp.add_constr p [ (1., x) ] Lp.Ge (-7.);
  let sol, obj = solve_opt p in
  checkf "x" (-7.) sol.(x);
  checkf "obj" (-7.) obj

let test_no_rows () =
  (* Pure-bound LP: zero constraint rows, m = 0 basis. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~lb:neg_infinity ~ub:3. ~obj:1. "x" in
  let y = Lp.add_var p ~lb:(-2.) ~ub:5. ~obj:(-1.) "y" in
  Lp.set_sense p Lp.Maximize;
  let sol, obj = solve_opt p in
  checkf "x" 3. sol.(x);
  checkf "y" (-2.) sol.(y);
  checkf "obj" 5. obj

let test_bound_flips () =
  let p = Lp.create () in
  let x = Lp.add_var p ~ub:1. ~obj:(-1.) "x" in
  let y = Lp.add_var p ~ub:1. ~obj:(-2.) "y" in
  Lp.add_constr p [ (1., x); (1., y) ] Lp.Le 1.5;
  let sol, obj = solve_opt p in
  checkf "obj" (-2.5) obj;
  checkf "x" 0.5 sol.(x);
  checkf "y" 1. sol.(y)

let test_fixed_variable () =
  let p = Lp.create () in
  let _x = Lp.add_var p ~lb:2. ~ub:2. ~obj:1. "x" in
  let _y = Lp.add_var p ~ub:4. ~obj:1. "y" in
  Lp.add_constr p [ (1., _x); (1., _y) ] Lp.Ge 5.;
  let _, obj = solve_opt p in
  checkf "obj" 5. obj

let test_infeasible () =
  let p = Lp.create () in
  let x = Lp.add_var p "x" in
  Lp.add_constr p [ (1., x) ] Lp.Ge 5.;
  Lp.add_constr p [ (1., x) ] Lp.Le 3.;
  Alcotest.(check bool) "infeasible" true
    (match Revised.solve p with Revised.Infeasible, _ -> true | _ -> false)

let test_unbounded () =
  let p = Lp.create () in
  let x = Lp.add_var p ~obj:1. "x" in
  let y = Lp.add_var p ~obj:(-1.) "y" in
  Lp.add_constr p [ (1., x); (-1., y) ] Lp.Le 0.;
  Alcotest.(check bool) "unbounded" true
    (match Revised.solve p with Revised.Unbounded, _ -> true | _ -> false)

let test_warm_after_bound_change () =
  (* Re-solve after a branch-style bound tightening: the warm path must
     engage (stats.warm) and agree with a cold solve. *)
  let p = Lp.create () in
  let x = Lp.add_var p ~ub:10. ~obj:(-3.) "x" in
  let y = Lp.add_var p ~ub:10. ~obj:(-5.) "y" in
  Lp.add_constr p [ (1., x); (2., y) ] Lp.Le 14.;
  Lp.add_constr p [ (3., x); (-1., y) ] Lp.Ge 0.;
  Lp.add_constr p [ (1., x); (-1., y) ] Lp.Le 2.;
  let basis =
    match Revised.solve p with
    | Revised.Optimal { basis; _ }, _ -> basis
    | _ -> Alcotest.fail "root solve failed"
  in
  Lp.set_bounds p x ~lb:0. ~ub:3.;
  let warm_res, warm_stats = Revised.solve_from basis p in
  let cold_res, _ = Revised.solve p in
  (match (warm_res, cold_res) with
  | Revised.Optimal { obj = a; _ }, Revised.Optimal { obj = b; _ } ->
    checkf "warm obj = cold obj" b a
  | _ -> Alcotest.fail "expected optimal on both paths");
  Alcotest.(check bool) "warm path used" true warm_stats.Revised.warm

let test_warm_detects_infeasible () =
  let p = Lp.create () in
  let x = Lp.add_var p ~ub:10. ~obj:1. "x" in
  Lp.add_constr p [ (1., x) ] Lp.Ge 4.;
  let basis =
    match Revised.solve p with
    | Revised.Optimal { basis; _ }, _ -> basis
    | _ -> Alcotest.fail "root solve failed"
  in
  Lp.set_bounds p x ~lb:0. ~ub:2.;
  (match Revised.solve_from basis p with
  | Revised.Infeasible, _ -> ()
  | _ -> Alcotest.fail "expected infeasible after tightening")

(* --------------------- random bounded LPs -------------------------- *)

type rlp = {
  sense_max : bool;
  bounds : (float * float) array;
  obj : float array;
  rows : (float array * Lp.cmp * float) list;
}

let print_rlp r =
  let cmp_str = function Lp.Le -> "<=" | Lp.Ge -> ">=" | Lp.Eq -> "=" in
  Printf.sprintf "%s obj=[%s] bounds=[%s] rows=[%s]"
    (if r.sense_max then "max" else "min")
    (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%g") r.obj)))
    (String.concat ","
       (Array.to_list
          (Array.map (fun (l, u) -> Printf.sprintf "(%g,%g)" l u) r.bounds)))
    (String.concat "; "
       (List.map
          (fun (cs, cmp, rhs) ->
            Printf.sprintf "[%s] %s %g"
              (String.concat ","
                 (Array.to_list (Array.map (Printf.sprintf "%g") cs)))
              (cmp_str cmp) rhs)
          r.rows))

let rlp_gen =
  QCheck.Gen.(
    let* nv = int_range 2 5 in
    let* sense_max = bool in
    let* bounds =
      array_repeat nv
        (let* lb_kind = int_bound 4 in
         let* span = int_range 1 12 in
         let lb =
           match lb_kind with
           | 0 -> -3.
           | 1 -> -1.
           | 4 -> neg_infinity
           | _ -> 0.
         in
         let* open_ub = int_bound 4 in
         let ub =
           if open_ub = 0 && lb > neg_infinity then infinity
           else (if lb = neg_infinity then -3. else lb) +. float_of_int span
         in
         return (lb, ub))
    in
    let* obj =
      array_repeat nv (map (fun n -> float_of_int (n - 5)) (int_bound 10))
    in
    let* rows =
      list_size (int_range 1 6)
        (let* coeffs =
           array_repeat nv (map (fun n -> float_of_int (n - 3)) (int_bound 6))
         in
         let* cmp =
           frequency [ (5, return Lp.Le); (3, return Lp.Ge); (1, return Lp.Eq) ]
         in
         let* rhs = map (fun n -> float_of_int (n - 10)) (int_bound 20) in
         return (coeffs, cmp, rhs))
    in
    return { sense_max; bounds; obj; rows })

let rlp_arb = QCheck.make ~print:print_rlp rlp_gen

let build r =
  let p = Lp.create () in
  let nv = Array.length r.bounds in
  let vars =
    Array.init nv (fun i ->
        let lb, ub = r.bounds.(i) in
        Lp.add_var p ~lb ~ub ~obj:r.obj.(i) (Printf.sprintf "v%d" i))
  in
  if r.sense_max then Lp.set_sense p Lp.Maximize;
  List.iter
    (fun (coeffs, cmp, rhs) ->
      let terms = ref [] in
      Array.iteri
        (fun i c -> if c <> 0. then terms := (c, vars.(i)) :: !terms)
        coeffs;
      if !terms <> [] then Lp.add_constr p !terms cmp rhs)
    r.rows;
  p

let agree p r_dense r_rev =
  match (r_dense, r_rev) with
  | Simplex.Optimal { obj = a; _ }, Revised.Optimal { obj = b; x; _ } ->
    Float.abs (a -. b) < 1e-5 && Lp.constraint_violation p x < 1e-6
  | Simplex.Infeasible, Revised.Infeasible -> true
  | Simplex.Unbounded, Revised.Unbounded -> true
  | Simplex.Iteration_limit, _ | _, Revised.Iteration_limit -> true
  | _ -> false

let test_revised_matches_dense =
  QCheck.Test.make ~name:"revised = dense simplex on random bounded LPs"
    ~count:220 rlp_arb (fun r ->
      let p = build r in
      agree p (Simplex.solve p) (fst (Revised.solve p)))

let agree_rev p r1 r2 =
  match (r1, r2) with
  | Revised.Optimal { obj = a; x; _ }, Revised.Optimal { obj = b; _ } ->
    Float.abs (a -. b) < 1e-5 && Lp.constraint_violation p x < 1e-6
  | Revised.Infeasible, Revised.Infeasible -> true
  | Revised.Unbounded, Revised.Unbounded -> true
  | Revised.Iteration_limit, _ | _, Revised.Iteration_limit -> true
  | _ -> false

let test_warm_equals_cold =
  QCheck.Test.make
    ~name:"solve_from parent basis = cold solve on branched subproblems"
    ~count:120 rlp_arb (fun r ->
      let p = build r in
      match Revised.solve p with
      | Revised.Optimal { x; basis; _ }, _ ->
        let ok = ref true in
        Array.iteri
          (fun v xv ->
            if !ok then begin
              let lb = Lp.var_lb p v and ub = Lp.var_ub p v in
              (* Down and up branches around the LP value, as B&B does. *)
              List.iter
                (fun (nlb, nub) ->
                  if !ok && nub >= nlb then begin
                    Lp.set_bounds p v ~lb:nlb ~ub:nub;
                    let warm, stats = Revised.solve_from basis p in
                    let cold, _ = Revised.solve p in
                    ignore stats;
                    if not (agree_rev p warm cold) then ok := false;
                    Lp.set_bounds p v ~lb ~ub
                  end)
                [
                  (lb, Float.min ub (Float.floor xv));
                  (Float.max lb (Float.ceil xv), ub);
                ]
            end)
          x;
        !ok
      | _ -> true)

let () =
  Alcotest.run "fp_lp_revised"
    [
      ( "known",
        [
          Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "equalities" `Quick test_equality_system;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "no rows" `Quick test_no_rows;
          Alcotest.test_case "bound flips" `Quick test_bound_flips;
          Alcotest.test_case "fixed variable" `Quick test_fixed_variable;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "warm after bound change" `Quick
            test_warm_after_bound_change;
          Alcotest.test_case "warm detects infeasible" `Quick
            test_warm_detects_infeasible;
        ] );
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest test_revised_matches_dense;
          QCheck_alcotest.to_alcotest test_warm_equals_cold;
        ] );
    ]
