# A 12-module SoC-flavoured sample instance for bin/floorplanner.
# Format: see Fp_netlist.Parser (module NAME rigid W H |
#         module NAME flexible AREA MIN_ASPECT MAX_ASPECT;
#         net NAME [crit=C] MOD:SIDE ...  with sides L R B T).
instance soc12
module cpu     rigid 24 20
module fpu     rigid 18 16
module l1i     rigid 16 12
module l1d     rigid 16 12
module l2      rigid 28 22
module noc     flexible 240 0.4 2.5
module ddrphy  rigid 30 8
module usb     rigid 10 8
module pcie    rigid 12 10
module dma     flexible 120 0.5 2.0
module aon     flexible 80 0.5 2.0
module gpio    rigid 8 6

net ifetch   crit=0.9 cpu:T l1i:B
net ldst     crit=0.8 cpu:R l1d:L
net fp       cpu:B fpu:T
net l1i_l2   l1i:R l2:L
net l1d_l2   l1d:R l2:L
net mem      crit=0.7 l2:B ddrphy:T noc:R
net noc_cpu  noc:T cpu:L
net noc_dma  noc:B dma:T
net noc_pcie noc:L pcie:R
net noc_usb  noc:L usb:R
net dbg      aon:T cpu:L gpio:R
net pads     gpio:B usb:B pcie:B
net pwr      aon:R dma:L l2:T
