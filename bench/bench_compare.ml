(* Continuous-perf comparator: gate CI on search-effort regressions.

   Reads the committed baseline [bench/history.jsonl] (append-only, one
   JSON object per line) and one or more fresh BENCH_*.json files from a
   bench run, matches rows by (bench, key), and fails — exit 1 — when a
   tracked metric regressed by more than the gate:

     fresh > base * (1 + threshold) + slack

   Tracked metrics: [nodes], [pivots] (slack 50 — tiny solves jitter),
   [wall_clock_s] (slack 5.0 s — scheduler noise, and the baseline may
   have been recorded on a different machine; the deterministic node and
   pivot counters are the strict signal).  Threshold 15%.
   Improvements are reported but never gate; refreshing the baseline is
   an explicit act: re-run with [--record] and commit the appended
   lines.

   Zero dependencies: the JSON here is machine-written by bench/main.ml
   (flat objects, no exotic escapes), so a ~100-line recursive-descent
   reader suffices; anything it cannot parse is a hard error rather than
   a silently skipped row. *)

(* ------------------------------ JSON ------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" lit)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape"
         else
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'u' ->
             (* The writer only emits \u00XX for control bytes. *)
             if !pos + 4 >= n then fail "truncated \\u escape";
             let hex = String.sub s (!pos + 1) 4 in
             (match int_of_string_opt ("0x" ^ hex) with
             | Some code when code < 256 -> Buffer.add_char buf (Char.chr code)
             | Some _ -> Buffer.add_char buf '?'
             | None -> fail "bad \\u escape");
             pos := !pos + 4
           | c -> fail (Printf.sprintf "unknown escape '\\%c'" c));
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let num_member k j = match member k j with Some (Num f) -> Some f | _ -> None
let str_member k j = match member k j with Some (Str s) -> Some s | _ -> None

(* ----------------------------- metrics ----------------------------- *)

(* (metric name, absolute slack): the relative gate alone would flag
   1-node jitter on trivial solves. *)
let tracked = [ ("nodes", 50.); ("pivots", 50.); ("wall_clock_s", 5.0) ]

let threshold = 0.15

(* A BENCH row -> stable key within its experiment.  Rows without a [k]
   are keyed by their distinguishing field; unkeyable rows are skipped
   (the gate tracks the per-K search effort, not every record). *)
let row_key row =
  let k = num_member "k" row in
  let fm = str_member "formulation" row in
  match (k, fm) with
  | Some k, Some fm when fm <> "basic" ->
    (* Strengthened modes are tracked separately per K. *)
    Some (Printf.sprintf "k%d:%s" (int_of_float k) fm)
  | Some k, _ -> Some (Printf.sprintf "k%d" (int_of_float k))
  | None, _ -> None

let row_metrics row =
  List.filter_map
    (fun (m, slack) ->
      let field = if m = "wall_clock_s" then "time_s" else m in
      match num_member field row with
      | Some v -> Some (m, v, slack)
      | None -> None)
    tracked

(* ------------------------------ main ------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let history_path = ref "bench/history.jsonl" in
  let record = ref false in
  let fresh_files = ref [] in
  let spec =
    [
      ("--history", Arg.Set_string history_path,
       "PATH baseline history (default bench/history.jsonl)");
      ("--record", Arg.Set record,
       " append the fresh rows to the history instead of gating");
    ]
  in
  Arg.parse spec
    (fun f -> fresh_files := f :: !fresh_files)
    "bench_compare [--history H] [--record] BENCH_x.json ...";
  let fresh_files = List.rev !fresh_files in
  if fresh_files = [] then begin
    prerr_endline "bench_compare: no BENCH json files given";
    exit 2
  end;
  (* Baseline: last line per (bench, key) wins — the file is append-only
     and newer entries supersede older ones. *)
  let baseline : (string * string, (string * float) list) Hashtbl.t =
    Hashtbl.create 64
  in
  (if Sys.file_exists !history_path then
     let ic = open_in !history_path in
     Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
     try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then begin
            let j = parse_json line in
            match (str_member "bench" j, str_member "key" j) with
            | Some b, Some k ->
              let metrics =
                List.filter_map
                  (fun (m, _) ->
                    Option.map (fun v -> (m, v)) (num_member m j))
                  tracked
              in
              Hashtbl.replace baseline (b, k) metrics
            | _ -> ()
          end
        done
      with End_of_file -> ());
  let regressions = ref [] in
  let fresh_lines = ref [] in
  let date =
    let t = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02d" (1900 + t.Unix.tm_year) (t.Unix.tm_mon + 1)
      t.Unix.tm_mday
  in
  List.iter
    (fun path ->
      let j = parse_json (String.trim (read_file path)) in
      let bench =
        match str_member "experiment" j with
        | Some e -> e
        | None -> Filename.remove_extension (Filename.basename path)
      in
      let commit =
        match str_member "commit" j with
        | Some c -> c
        | None ->
          Option.value ~default:"unknown" (Sys.getenv_opt "GITHUB_SHA")
      in
      let rows = match member "rows" j with Some (Arr rs) -> rs | _ -> [] in
      List.iter
        (fun row ->
          match row_key row with
          | None -> ()
          | Some key -> (
            let metrics = row_metrics row in
            let line =
              Printf.sprintf
                "{\"bench\":\"%s\",\"key\":\"%s\",%s,\"commit\":\"%s\",\"date\":\"%s\"}"
                bench key
                (String.concat ","
                   (List.map
                      (fun (m, v, _) -> Printf.sprintf "\"%s\":%.6g" m v)
                      metrics))
                commit date
            in
            fresh_lines := line :: !fresh_lines;
            match Hashtbl.find_opt baseline (bench, key) with
            | None ->
              Printf.printf "NEW      %s/%s (no baseline)\n" bench key
            | Some base ->
              List.iter
                (fun (m, v, slack) ->
                  match List.assoc_opt m base with
                  | None -> ()
                  | Some b ->
                    let gate = (b *. (1. +. threshold)) +. slack in
                    if v > gate then begin
                      Printf.printf
                        "REGRESS  %s/%s %s: %.6g -> %.6g (gate %.6g)\n" bench
                        key m b v gate;
                      regressions := (bench, key, m) :: !regressions
                    end
                    else
                      Printf.printf "ok       %s/%s %s: %.6g -> %.6g\n" bench
                        key m b v)
                metrics))
        rows)
    fresh_files;
  if !record then begin
    let oc =
      open_out_gen [ Open_append; Open_creat ] 0o644 !history_path
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          (List.rev !fresh_lines));
    Printf.printf "recorded %d rows -> %s\n" (List.length !fresh_lines)
      !history_path
  end
  else if !regressions <> [] then begin
    Printf.printf "%d regression(s) beyond %.0f%%\n"
      (List.length !regressions) (100. *. threshold);
    exit 1
  end
  else print_endline "no regressions"
