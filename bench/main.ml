(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (section 4) and runs Bechamel micro-benchmarks for the
   performance-critical kernels.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- --table 1    -- one table
     dune exec bench/main.exe -- --figures    -- figures 5 and 6 (SVG + ASCII)
     dune exec bench/main.exe -- --ablation   -- design-choice ablations
     dune exec bench/main.exe -- --bechamel   -- micro-benchmarks only
     dune exec bench/main.exe -- --quick      -- reduced MILP budgets

   Absolute numbers differ from the paper's 1990 Apollo DN3550 runs; the
   shapes the paper claims (near-linear time in modules, connectivity
   ordering beating random, wire term reducing wirelength, envelopes
   reducing the post-routing chip area) are what this harness
   demonstrates.  See EXPERIMENTS.md for the side-by-side record. *)

module Netlist = Fp_netlist.Netlist
module Generator = Fp_netlist.Generator
module BB = Fp_milp.Branch_bound
module Skyline = Fp_geometry.Skyline
module Rect = Fp_geometry.Rect
module Solver = Fp_engine.Solver
module Portfolio = Fp_engine.Portfolio
open Fp_core

let out_dir = ref "."
let quick = ref false
let json = ref false
let max_k = ref max_int
let jobs = ref 1
let printf = Printf.printf
let t_start = Unix.gettimeofday ()

(* Git commit id stamped into every JSON record — lets a regression
   tracker attribute a number to the code that produced it.  "unknown"
   outside a work tree (e.g. a tarball build). *)
let commit_id =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

(* Minimal JSON emitter — the experiment records are flat enough that a
   dependency-free writer beats pulling in a parser library. *)
module Json = struct
  type t =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec emit buf = function
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      (* JSON has no inf/nan literals. *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | Str s -> add_escaped buf s
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        l;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'
end

(* Write BENCH_<exp>.json into the output directory when --json is on.
   Every record carries provenance: wall clock since harness start, the
   --jobs setting, and the git commit. *)
let write_json exp fields =
  if !json then begin
    let path = Filename.concat !out_dir (Printf.sprintf "BENCH_%s.json" exp) in
    let buf = Buffer.create 1024 in
    let fields =
      fields
      @ [
          ("wall_clock_s", Json.Float (Unix.gettimeofday () -. t_start));
          ("jobs", Json.Int !jobs);
          ("commit", Json.Str (Lazy.force commit_id));
        ]
    in
    Json.emit buf (Json.Obj (("experiment", Json.Str exp) :: fields));
    Buffer.add_char buf '\n';
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Buffer.contents buf));
    printf "JSON -> %s\n" path
  end

let status_str = function
  | BB.Optimal -> "optimal"
  | BB.Feasible -> "feasible"
  | BB.Infeasible -> "infeasible"
  | BB.Unbounded -> "unbounded"
  | BB.No_solution -> "no_solution"

(* Severity order for the CI regression gate: any step losing its solution
   outright is a solver regression; optimal -> feasible is budget noise. *)
let status_rank = function
  | BB.Optimal -> 0
  | BB.Feasible -> 1
  | BB.Infeasible | BB.Unbounded | BB.No_solution -> 2

let worst_status steps =
  List.fold_left
    (fun acc s ->
      if status_rank s.Augment.milp_status > status_rank acc then
        s.Augment.milp_status
      else acc)
    BB.Optimal steps

let sum_steps f steps = List.fold_left (fun a s -> a + f s) 0 steps

(* Resilience provenance attached to every per-run JSON record: what the
   run degraded on, how often it retried, and whether the deadline ladder
   had to truncate steps.  A regression tracker diffing BENCH files sees
   a solver that silently started falling back. *)
let resilience_fields steps =
  let degs =
    List.concat_map
      (fun (s : Augment.step_stat) -> s.Augment.degradations)
      steps
  in
  [
    ( "degradations",
      Json.List (List.map (fun d -> Json.Str (Degradation.to_string d)) degs) );
    ("retries", Json.Int (sum_steps (fun s -> s.Augment.retries) steps));
    ( "deadline_misses",
      Json.Int
        (List.length
           (List.filter (fun d -> d = Degradation.Deadline_truncated) degs)) );
  ]

let formulation_fields (config : Augment.config) steps =
  [
    ("formulation", Json.Str (Formulation.mode_to_string config.Augment.formulation));
    ("cuts_added", Json.Int (sum_steps (fun s -> s.Augment.cuts_added) steps));
    ("cuts_purged", Json.Int (sum_steps (fun s -> s.Augment.cuts_purged) steps));
    ( "separation_time_s",
      Json.Float
        (List.fold_left (fun a s -> a +. s.Augment.separation_time) 0. steps) );
  ]

(* First [k] modules of the ami33 instance with every net that stays
   inside them — the prefix family the formulation ablation and the
   fault matrix share. *)
let ami33_prefix k =
  let full = Fp_data.Ami33.netlist () in
  if k >= Netlist.num_modules full then full
  else begin
    let mods = Array.to_list (Array.sub (Netlist.modules full) 0 k) in
    let nets =
      List.filter
        (fun n -> List.for_all (fun m -> m < k) (Fp_netlist.Net.modules n))
        (Netlist.nets full)
    in
    Netlist.create ~name:(Printf.sprintf "ami33_k%d" k) mods nets
  end

let table1_sizes () =
  List.filter (fun k -> k <= !max_k) Fp_data.Instances.table1_sizes

let hr title =
  printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let base_config () =
  let d = { Augment.default_config with Augment.jobs = !jobs } in
  if !quick then
    { d with
      Augment.milp = { d.Augment.milp with BB.node_limit = 500; time_limit = 5. } }
  else d

(* One full floorplanning run: augmentation, then the end-of-run
   adjustment (compaction + known-topology LP), as in the paper's
   Figure 3 steps 12-13. *)
let floorplan ?config nl =
  let config = match config with Some c -> c | None -> base_config () in
  let res = Augment.run ~config nl in
  let pl = Compact.vertical res.Augment.placement in
  let pl, _ = Topology.optimize ~linearization:config.Augment.linearization nl pl in
  (res, pl)

(* --------------------------------------------------------------------- *)
(* Table 1: problem size vs execution time and utilization                *)
(* --------------------------------------------------------------------- *)

let table1 () =
  hr "Table 1 -- execution time and utilization vs problem size";
  printf "(paper: K=15/20/25/33, time in minutes on a 4-MIPS Apollo; the\n";
  printf " claim under reproduction: time grows almost linearly with K)\n\n";
  printf "%8s %12s %12s %14s %12s %10s\n" "Modules" "Chip Area" "Height"
    "Exec Time (s)" "Utilization" "MILP nodes";
  let samples = ref [] and rows = ref [] in
  List.iter
    (fun k ->
      let nl = Fp_data.Instances.table1_instance k in
      let t0 = Unix.gettimeofday () in
      let res, pl = floorplan nl in
      let dt = Unix.gettimeofday () -. t0 in
      let steps = res.Augment.steps in
      let nodes = sum_steps (fun s -> s.Augment.nodes) steps in
      samples := (float_of_int k, dt) :: !samples;
      rows :=
        Json.Obj
          ([
            ("engine", Json.Str "milp");
            ("k", Json.Int k);
            ("time_s", Json.Float dt);
            ("area", Json.Float (Placement.chip_area pl));
            ("height", Json.Float pl.Placement.height);
            ("utilization", Json.Float (Metrics.utilization nl pl));
            ("nodes", Json.Int nodes);
            ("lp_solves", Json.Int (sum_steps (fun s -> s.Augment.lp_solves) steps));
            ("warm_hits", Json.Int (sum_steps (fun s -> s.Augment.warm_hits) steps));
            ("cold_solves", Json.Int (sum_steps (fun s -> s.Augment.cold_solves) steps));
            ("pivots", Json.Int (sum_steps (fun s -> s.Augment.pivots) steps));
            ("worst_status", Json.Str (status_str (worst_status steps)));
          ]
          @ formulation_fields (base_config ()) steps
          @ resilience_fields steps)
        :: !rows;
      printf "%8d %12.0f %12.1f %14.2f %11.1f%% %10d\n" k
        (Placement.chip_area pl) pl.Placement.height dt
        (100. *. Metrics.utilization nl pl)
        nodes)
    (table1_sizes ());
  if List.length !samples >= 2 then begin
    let fit = Fp_util.Stats.linear_fit (List.rev !samples) in
    printf "\nleast-squares fit of time vs K: %s\n"
      (Format.asprintf "%a" Fp_util.Stats.pp_fit fit);
    printf "(R^2 close to 1 supports the paper's almost-linear-growth claim)\n"
  end;
  write_json "table1" [ ("rows", Json.List (List.rev !rows)) ]

(* --------------------------------------------------------------------- *)
(* Table 2: ami33, over-the-cell routing                                  *)
(* --------------------------------------------------------------------- *)

let table2 () =
  hr "Table 2 -- ami33, over-the-cell routing (objective x ordering)";
  printf "(paper: best chip utilization 96%% with the area objective;\n";
  printf " wirelength measured as HPWL over generalized pins)\n\n";
  printf "%-10s %-8s %12s %12s %12s %10s\n" "Objective" "Order" "Chip Area"
    "Util" "WireLen" "Time (s)";
  let nl = Fp_data.Ami33.netlist () in
  let combos =
    [
      ("Chip Area", "Random", Formulation.Min_height, `Random 1988);
      ("Chip Area", "Linear", Formulation.Min_height, `Linear);
      ("Area+Wire", "Random", Formulation.Min_height_plus_wire 0.02,
       `Random 1988);
      ("Area+Wire", "Linear", Formulation.Min_height_plus_wire 0.02, `Linear);
    ]
  in
  List.iter
    (fun (obj_name, ord_name, objective, ordering) ->
      let base = base_config () in
      let config =
        { base with
          Augment.objective; ordering;
          (* Wire-term LPs are ~2x bigger; cap the node budget so the
             sweep stays minutes, not tens of minutes. *)
          milp =
            (match objective with
            | Formulation.Min_height -> base.Augment.milp
            | Formulation.Min_height_plus_wire _ ->
              { base.Augment.milp with BB.node_limit = 1200 }) }
      in
      let t0 = Unix.gettimeofday () in
      let _, pl = floorplan ~config nl in
      let dt = Unix.gettimeofday () -. t0 in
      printf "%-10s %-8s %12.0f %11.1f%% %12.0f %10.2f\n" obj_name ord_name
        (Placement.chip_area pl)
        (100. *. Metrics.utilization nl pl)
        (Metrics.hpwl nl pl) dt)
    combos

(* --------------------------------------------------------------------- *)
(* Table 3: ami33, around-the-cell routing                                *)
(* --------------------------------------------------------------------- *)

let pitch_h = 0.35
let pitch_v = 0.35

let table3 () =
  hr "Table 3 -- ami33, around-the-cell routing (envelopes x router)";
  printf "(paper: floorplan adjustment with envelopes decreases the final\n";
  printf " chip size; wirelength from the global router's paths)\n\n";
  printf "%-12s %-9s %12s %12s %12s %12s %10s\n" "Adjustment" "Router"
    "Base Area" "Final Area" "WireLen" "Overflow" "Growth";
  let nl = Fp_data.Ami33.netlist () in
  let plan envelopes =
    let config =
      { (base_config ()) with
        Augment.envelope =
          (if envelopes then Some { Augment.pitch_h; pitch_v; share = 0.5 }
           else None) }
    in
    snd (floorplan ~config nl)
  in
  let without_env = plan false and with_env = plan true in
  let routers =
    [ ("Shortest", Fp_route.Global_router.Shortest_path);
      ("Weighted", Fp_route.Global_router.Weighted { penalty = 3. }) ]
  in
  List.iter
    (fun (adj_name, pl) ->
      List.iter
        (fun (r_name, algorithm) ->
          let rt =
            Fp_route.Global_router.route ~algorithm ~pitch_h ~pitch_v nl pl
          in
          let rep = Fp_route.Adjust.compute rt ~pitch_h ~pitch_v in
          let base =
            rep.Fp_route.Adjust.base_width *. rep.Fp_route.Adjust.base_height
          in
          printf "%-12s %-9s %12.0f %12.0f %12.0f %12.0f %9.1f%%\n" adj_name
            r_name base rep.Fp_route.Adjust.final_area
            rt.Fp_route.Global_router.total_wirelength
            rt.Fp_route.Global_router.overflow_total
            (100. *. ((rep.Fp_route.Adjust.final_area /. base) -. 1.)))
        routers)
    [ ("No Envelope", without_env); ("Envelope", with_env) ]

(* --------------------------------------------------------------------- *)
(* Figures 5 and 6                                                        *)
(* --------------------------------------------------------------------- *)

let figures () =
  hr "Figures 5 and 6 -- ami33 floorplan, and floorplan with routing";
  let nl = Fp_data.Ami33.netlist () in
  let config =
    { (base_config ()) with
      Augment.envelope = Some { Augment.pitch_h; pitch_v; share = 0.5 } }
  in
  let _, pl = floorplan ~config nl in
  let fig5 = Filename.concat !out_dir "fig5_ami33.svg" in
  Fp_viz.Svg.save fig5 (Fp_viz.Svg.of_placement ~netlist:nl pl);
  printf "Figure 5 (floorplan of the ami33 chip) -> %s\n" fig5;
  let rt =
    Fp_route.Global_router.route
      ~algorithm:(Fp_route.Global_router.Weighted { penalty = 3. })
      ~pitch_h ~pitch_v nl pl
  in
  let fig6 = Filename.concat !out_dir "fig6_ami33_routed.svg" in
  Fp_viz.Svg.save fig6 (Fp_viz.Svg.of_routed ~netlist:nl pl rt);
  printf "Figure 6 (final floorplan with routing space) -> %s\n" fig6;
  printf "\nASCII rendering (Figure 5):\n%s\n" (Fp_viz.Ascii.render ~cols:76 pl)

(* --------------------------------------------------------------------- *)
(* Ablations                                                              *)
(* --------------------------------------------------------------------- *)

let ablation_group_size () =
  hr "Ablation -- augmentation group size (quality vs MILP effort)";
  printf "%6s %10s %12s %12s %12s\n" "Group" "Height" "Util" "Nodes" "Time (s)";
  let nl = Fp_data.Instances.table1_instance 15 in
  List.iter
    (fun g ->
      let config = { (base_config ()) with Augment.group_size = g } in
      let t0 = Unix.gettimeofday () in
      let res, pl = floorplan ~config nl in
      let dt = Unix.gettimeofday () -. t0 in
      let nodes =
        List.fold_left (fun a s -> a + s.Augment.nodes) 0 res.Augment.steps
      in
      printf "%6d %10.1f %11.1f%% %12d %12.2f\n" g pl.Placement.height
        (100. *. Metrics.utilization nl pl) nodes dt)
    [ 2; 3; 4; 5 ]

let ablation_covering () =
  hr "Ablation -- covering rectangles (Theorem 2's payoff)";
  printf "%-12s %14s %12s %12s\n" "Obstacles" "Integer vars" "Height" "Time (s)";
  let nl = Fp_data.Instances.table1_instance 20 in
  List.iter
    (fun (name, use_covering) ->
      let config = { (base_config ()) with Augment.use_covering } in
      let t0 = Unix.gettimeofday () in
      let res, pl = floorplan ~config nl in
      let dt = Unix.gettimeofday () -. t0 in
      let ints =
        List.fold_left (fun a s -> a + s.Augment.num_integer_vars) 0
          res.Augment.steps
      in
      printf "%-12s %14d %12.1f %12.2f\n" name ints pl.Placement.height dt)
    [ ("covering", true); ("raw modules", false) ]

let ablation_branch_rule () =
  hr "Ablation -- branch-and-bound branching rule";
  printf "%-18s %10s %12s %12s\n" "Rule" "Height" "Nodes" "Time (s)";
  let nl = Fp_data.Instances.table1_instance 15 in
  List.iter
    (fun (name, rule) ->
      let base = base_config () in
      let config =
        { base with
          Augment.milp = { base.Augment.milp with BB.branch_rule = rule } }
      in
      let t0 = Unix.gettimeofday () in
      let res, pl = floorplan ~config nl in
      let dt = Unix.gettimeofday () -. t0 in
      let nodes =
        List.fold_left (fun a s -> a + s.Augment.nodes) 0 res.Augment.steps
      in
      printf "%-18s %10.1f %12d %12.2f\n" name pl.Placement.height nodes dt)
    [ ("most-fractional", BB.Most_fractional);
      ("first-fractional", BB.First_fractional) ]

let ablation_router_penalty () =
  hr "Ablation -- router congestion penalty sweep";
  printf "%8s %12s %12s %12s\n" "Penalty" "WireLen" "OverflowSum" "MaxOverflow";
  let nl = Fp_data.Ami33.netlist () in
  let _, pl = floorplan nl in
  List.iter
    (fun penalty ->
      let algorithm =
        if penalty = 0. then Fp_route.Global_router.Shortest_path
        else Fp_route.Global_router.Weighted { penalty }
      in
      let rt = Fp_route.Global_router.route ~algorithm ~pitch_h ~pitch_v nl pl in
      printf "%8.1f %12.0f %12.0f %12.0f\n" penalty
        rt.Fp_route.Global_router.total_wirelength
        rt.Fp_route.Global_router.overflow_total
        rt.Fp_route.Global_router.max_overflow)
    [ 0.; 1.; 3.; 10. ]

let baseline_comparison () =
  hr "Baseline -- MILP successive augmentation vs slicing + annealing";
  printf "(the paper's pitch: the MILP method is not restricted to slicing\n";
  printf " structures; Wong-Liu style SA over normalized Polish expressions\n";
  printf " is the canonical slicing competitor)\n\n";
  printf "%-10s %-22s %12s %12s %12s %10s\n" "Instance" "Method" "Chip Area"
    "Util" "HPWL" "Time (s)";
  List.iter
    (fun k ->
      let nl = Fp_data.Instances.table1_instance k in
      let t0 = Unix.gettimeofday () in
      let _, milp_pl = floorplan nl in
      let t_milp = Unix.gettimeofday () -. t0 in
      let slicing_cfg =
        { Fp_slicing.Anneal.default_config with
          Fp_slicing.Anneal.outline =
            Fp_core.Outline.Max_width milp_pl.Placement.chip_width }
      in
      let sa_pl, sa_stats = Fp_slicing.Anneal.run ~config:slicing_cfg nl in
      let row name pl t =
        printf "%-10s %-22s %12.0f %11.1f%% %12.0f %10.2f\n"
          (Netlist.name nl) name
          (Placement.chip_area pl)
          (100. *. Metrics.utilization nl pl)
          (Metrics.hpwl nl pl) t
      in
      row "MILP (this paper)" milp_pl t_milp;
      row "slicing SA (baseline)" sa_pl sa_stats.Fp_slicing.Anneal.elapsed)
    [ 15; 33 ]

let ablation_warm_start () =
  hr "Ablation -- basis warm starting (cold vs warm node LP solves)";
  printf "(each B&B child differs from its parent by one variable-bound flip;\n";
  printf " the revised simplex re-solves it from the parent basis with a few\n";
  printf " dual pivots instead of a cold two-phase solve)\n\n";
  printf "%4s %-6s %12s %10s %10s %10s %10s %10s %10s\n" "K" "Mode" "Area"
    "Util" "Pivots" "LPsolves" "WarmHits" "Time (s)" "Certify";
  let rows = ref [] in
  let sizes =
    match List.filter (fun k -> k = 15 || k = 25) (table1_sizes ()) with
    | [] -> [ 15 ]
    | l -> l
  in
  List.iter
    (fun k ->
      let nl = Fp_data.Instances.table1_instance k in
      let run ~warm_lp ~shadow =
        let base = base_config () in
        let config =
          { base with
            Augment.milp =
              { base.Augment.milp with BB.warm_lp; shadow_cold = shadow } }
        in
        let t0 = Unix.gettimeofday () in
        let res, pl = floorplan ~config nl in
        let dt = Unix.gettimeofday () -. t0 in
        let errors, _, _ =
          Fp_check.Diagnostic.count (Fp_check.Certify.placement nl pl)
        in
        (res.Augment.steps, pl, dt, errors)
      in
      (* Two end-to-end runs (honest wall clock for each engine), plus a
         shadow run that prices every warm node with a cold solve too —
         the matched-tree comparison the acceptance number comes from:
         same subproblems, same floorplan by construction. *)
      let cold_steps, cold_pl, cold_dt, cold_err = run ~warm_lp:false ~shadow:false in
      let warm_steps, warm_pl, warm_dt, warm_err = run ~warm_lp:true ~shadow:false in
      let sh_steps, sh_pl, _, _ = run ~warm_lp:true ~shadow:true in
      let report mode steps pl dt errors =
        printf "%4d %-6s %12.0f %9.1f%% %10d %10d %10d %10.2f %10s\n" k mode
          (Placement.chip_area pl)
          (100. *. Metrics.utilization nl pl)
          (sum_steps (fun s -> s.Augment.pivots) steps)
          (sum_steps (fun s -> s.Augment.lp_solves) steps)
          (sum_steps (fun s -> s.Augment.warm_hits) steps)
          dt
          (if errors = 0 then "pass" else "FAIL")
      in
      report "cold" cold_steps cold_pl cold_dt cold_err;
      report "warm" warm_steps warm_pl warm_dt warm_err;
      let matched_warm = sum_steps (fun s -> s.Augment.pivots) sh_steps in
      let matched_cold = sum_steps (fun s -> s.Augment.shadow_pivots) sh_steps in
      let ratio =
        if matched_warm = 0 then Float.infinity
        else float_of_int matched_cold /. float_of_int matched_warm
      in
      (* The shadow run must reproduce the plain warm run exactly (the
         extra solves are side-effect free); flag it if numerics ever
         break that. *)
      let same pl1 pl2 =
        Float.abs (Placement.chip_area pl1 -. Placement.chip_area pl2)
          <= 1e-6 *. Float.max 1. (Placement.chip_area pl1)
      in
      printf
        "     matched tree: cold %d vs warm %d pivots -> %.2fx reduction%s\n"
        matched_cold matched_warm ratio
        (if same sh_pl warm_pl then "" else "  (SHADOW RUN DIVERGED)");
      let mode_obj steps pl dt errors =
        Json.Obj
          ([
            ("area", Json.Float (Placement.chip_area pl));
            ("utilization", Json.Float (Metrics.utilization nl pl));
            ("pivots", Json.Int (sum_steps (fun s -> s.Augment.pivots) steps));
            ("lp_solves", Json.Int (sum_steps (fun s -> s.Augment.lp_solves) steps));
            ("warm_hits", Json.Int (sum_steps (fun s -> s.Augment.warm_hits) steps));
            ("cold_solves", Json.Int (sum_steps (fun s -> s.Augment.cold_solves) steps));
            ("refactorizations",
             Json.Int (sum_steps (fun s -> s.Augment.refactorizations) steps));
            ("time_s", Json.Float dt);
            ("certified", Json.Bool (errors = 0));
            ("worst_status", Json.Str (status_str (worst_status steps)));
          ]
          @ formulation_fields (base_config ()) steps
          @ resilience_fields steps)
      in
      rows :=
        Json.Obj
          [
            ("engine", Json.Str "milp");
            ("k", Json.Int k);
            ("cold", mode_obj cold_steps cold_pl cold_dt cold_err);
            ("warm", mode_obj warm_steps warm_pl warm_dt warm_err);
            ("matched_cold_pivots", Json.Int matched_cold);
            ("matched_warm_pivots", Json.Int matched_warm);
            ("pivot_ratio", Json.Float ratio);
            ("identical_result", Json.Bool (same sh_pl warm_pl));
          ]
        :: !rows)
    sizes;
  write_json "ablation_warm_start" [ ("rows", Json.List (List.rev !rows)) ]

let ablation_parallel () =
  hr "Ablation -- domain-parallel branch-and-bound (scaling)";
  printf "(deterministic mode: every jobs count must reproduce the jobs=1\n";
  printf " floorplan bit-for-bit; speedup saturates at the machine's core\n";
  printf " count — %d on this host)\n\n"
    (Domain.recommended_domain_count ());
  let k =
    match List.filter (fun k -> k <= 25) (table1_sizes ()) with
    | [] -> 15
    | l -> List.fold_left Int.max 0 l
  in
  let nl = Fp_data.Instances.table1_instance k in
  printf "%6s %10s %10s %10s %12s %10s\n" "Jobs" "Height" "Time (s)" "Speedup"
    "Identical" "Certify";
  let rows = ref [] and ref_pl = ref None and ref_dt = ref 0. in
  List.iter
    (fun j ->
      let config = { (base_config ()) with Augment.jobs = j } in
      let t0 = Unix.gettimeofday () in
      let res, pl = floorplan ~config nl in
      let dt = Unix.gettimeofday () -. t0 in
      (match !ref_pl with
      | None ->
        ref_pl := Some pl;
        ref_dt := dt
      | Some _ -> ());
      (* Bit-for-bit: deterministic replay promises the identical
         incumbent at every step, and everything downstream of the MILP
         is deterministic arithmetic. *)
      let identical = pl = Option.get !ref_pl in
      let errors, _, _ =
        Fp_check.Diagnostic.count (Fp_check.Certify.placement nl pl)
      in
      let speedup = !ref_dt /. dt in
      printf "%6d %10.1f %10.2f %9.2fx %12s %10s\n" j pl.Placement.height dt
        speedup
        (if identical then "yes" else "NO")
        (if errors = 0 then "pass" else "FAIL");
      rows :=
        Json.Obj
          ([
            ("engine", Json.Str "milp");
            ("jobs", Json.Int j);
            ("time_s", Json.Float dt);
            ("speedup", Json.Float speedup);
            ("height", Json.Float pl.Placement.height);
            ("area", Json.Float (Placement.chip_area pl));
            ("identical_to_jobs1", Json.Bool identical);
            ("certified", Json.Bool (errors = 0));
          ]
          @ formulation_fields config res.Augment.steps
          @ resilience_fields res.Augment.steps)
        :: !rows)
    [ 1; 2; 4; 8 ];
  write_json "ablation_parallel"
    [
      ("k", Json.Int k);
      ("cores", Json.Int (Domain.recommended_domain_count ()));
      ("rows", Json.List (List.rev !rows));
    ]

let ablation_formulation () =
  hr "Ablation -- MILP formulation strengthening (basic vs tight vs cuts)";
  printf "(basic: global big-M caps, the paper's formulation verbatim;\n";
  printf " tight: per-pair big-M, static valid inequalities, node bound\n";
  printf " propagation; cuts: same, with the stacking/clique families\n";
  printf " separated lazily at B&B nodes instead of sitting in the LP)\n\n";
  printf "%4s %-6s %10s %10s %10s %7s %7s %9s %10s %8s\n" "K" "Mode" "Height"
    "Nodes" "Pivots" "Cuts+" "Cuts-" "Sep (s)" "Time (s)" "Certify";
  let rows = ref [] in
  let sizes = List.filter (fun k -> k <= !max_k) [ 10; 25; 33 ] in
  List.iter
    (fun k ->
      let nl = ami33_prefix k in
      List.iter
        (fun fm ->
          let config = { (base_config ()) with Augment.formulation = fm } in
          let t0 = Unix.gettimeofday () in
          let res, pl = floorplan ~config nl in
          let dt = Unix.gettimeofday () -. t0 in
          let steps = res.Augment.steps in
          let errors, _, _ =
            Fp_check.Diagnostic.count (Fp_check.Certify.placement nl pl)
          in
          printf "%4d %-6s %10.1f %10d %10d %7d %7d %9.2f %10.2f %8s\n" k
            (Formulation.mode_to_string fm)
            pl.Placement.height
            (sum_steps (fun s -> s.Augment.nodes) steps)
            (sum_steps (fun s -> s.Augment.pivots) steps)
            (sum_steps (fun s -> s.Augment.cuts_added) steps)
            (sum_steps (fun s -> s.Augment.cuts_purged) steps)
            (List.fold_left (fun a s -> a +. s.Augment.separation_time) 0. steps)
            dt
            (if errors = 0 then "pass" else "FAIL");
          rows :=
            Json.Obj
              ([
                 ("engine", Json.Str "milp");
                 ("k", Json.Int k);
                 ("height", Json.Float pl.Placement.height);
                 ("area", Json.Float (Placement.chip_area pl));
                 ("nodes", Json.Int (sum_steps (fun s -> s.Augment.nodes) steps));
                 ("pivots", Json.Int (sum_steps (fun s -> s.Augment.pivots) steps));
                 ( "lp_solves",
                   Json.Int (sum_steps (fun s -> s.Augment.lp_solves) steps) );
                 ("time_s", Json.Float dt);
                 ("certified", Json.Bool (errors = 0));
                 ("worst_status", Json.Str (status_str (worst_status steps)));
               ]
              @ formulation_fields config steps
              @ resilience_fields steps)
            :: !rows)
        [ Formulation.Basic; Formulation.Tight; Formulation.Cuts ])
    sizes;
  write_json "ablation_formulation" [ ("rows", Json.List (List.rev !rows)) ]

let ablations () =
  ablation_warm_start ();
  ablation_parallel ();
  ablation_formulation ();
  ablation_group_size ();
  ablation_covering ();
  ablation_branch_rule ();
  ablation_router_penalty ();
  baseline_comparison ()

(* --------------------------------------------------------------------- *)
(* Checking overhead: lint findings + certification time per step         *)
(* --------------------------------------------------------------------- *)

let check_overhead () =
  hr "Checking -- Fp_check lint findings and certification time per step";
  printf "(every step's MILP model linted, every partial placement and its\n";
  printf " covering decomposition certified; ami33, default config)\n\n";
  printf "%6s %8s %8s %8s %12s %14s\n" "Step" "Errors" "Warns" "Infos"
    "Lint (ms)" "Certify (ms)";
  let nl = Fp_data.Ami33.netlist () in
  let step = ref 0 in
  (* (errors, warnings, infos, lint ms) of the step's model, filled by
     on_model and consumed by on_step. *)
  let pending = ref (0, 0, 0, 0.) in
  let te = ref 0 and tw = ref 0 and ti = ref 0 in
  let tlint = ref 0. and tcert = ref 0. in
  let inspect =
    {
      Augment.on_model =
        (fun built ->
          incr step;
          let t0 = Unix.gettimeofday () in
          let ds = Fp_check.Lint.formulation built in
          let dt = 1e3 *. (Unix.gettimeofday () -. t0) in
          let e, w, i = Fp_check.Diagnostic.count ds in
          pending := (e, w, i, dt));
      on_step =
        (fun _stat pl ->
          let t0 = Unix.gettimeofday () in
          let ds = Fp_check.Certify.placement nl pl in
          let sky =
            Skyline.of_rects ~width:pl.Placement.chip_width
              (Placement.envelopes pl)
          in
          let cds =
            Fp_check.Certify.covering ~skyline:sky
              ~num_placed:(Placement.num_placed pl)
              (Fp_geometry.Covering.of_skyline sky)
          in
          let dt = 1e3 *. (Unix.gettimeofday () -. t0) in
          let e, w, i, lint_ms = !pending in
          let ce, cw, ci = Fp_check.Diagnostic.count (ds @ cds) in
          te := !te + e + ce;
          tw := !tw + w + cw;
          ti := !ti + i + ci;
          tlint := !tlint +. lint_ms;
          tcert := !tcert +. dt;
          printf "%6d %8d %8d %8d %12.1f %14.1f\n" !step (e + ce) (w + cw)
            (i + ci) lint_ms dt);
    }
  in
  let config =
    { (base_config ()) with Augment.check = true; inspect = Some inspect }
  in
  ignore (Augment.run ~config nl);
  printf "%6s %8d %8d %8d %12.1f %14.1f\n" "total" !te !tw !ti !tlint !tcert

(* --------------------------------------------------------------------- *)
(* Fault matrix: every registered fault site injected on an ami33 prefix  *)
(* --------------------------------------------------------------------- *)

let fault_matrix () =
  hr "Fault matrix -- every registered fault site, ami33 K<=12 prefix";
  printf "(acceptance: an injected fault must still yield a certifier-passing\n";
  printf " placement AND leave a degradation in the run record -- no crash,\n";
  printf " no hang, no silently-clean report)\n\n";
  let nl = ami33_prefix 12 in
  let base = base_config () in
  let base =
    { base with
      (* Small budgets give budget-type faults a real tree to hit and
         keep every row under a few seconds. *)
      Augment.milp =
        { base.Augment.milp with BB.node_limit = 300; time_limit = 5. };
      max_retries = 1 }
  in
  printf "%-26s %8s %8s %8s  %s\n" "Site" "Injected" "Certify" "Degrade"
    "Recorded degradations";
  let rows = ref [] and failures = ref [] in
  List.iter
    (fun site ->
      Fp_util.Fault.reset ();
      (* Some recovery paths only exist under a particular topology:
         worker crashes need concurrent candidate evaluation, task loss
         needs a parallel MILP frontier, hook faults need a hook. *)
      let config =
        match site with
        | "pool.worker_exn" ->
          { base with Augment.jobs = 2; candidates = 2 }
        | "branch_bound.task_loss" ->
          { base with
            Augment.jobs = 2;
            milp = { base.Augment.milp with BB.ramp_nodes = 0 } }
        | "augment.hook" ->
          { base with
            Augment.inspect =
              Some
                { Augment.on_model = (fun _ -> ());
                  on_step = (fun _ _ -> ()) } }
        | _ -> base
      in
      Fp_util.Fault.arm (Fp_util.Fault.spec ~count:2 site);
      let outcome =
        match floorplan ~config nl with
        | res, pl -> Ok (res, pl)
        | exception e -> Error (Printexc.to_string e)
      in
      let injected = Fp_util.Fault.injections site in
      Fp_util.Fault.disarm site;
      match outcome with
      | Error msg ->
        failures := Printf.sprintf "%s: escaped exception %s" site msg
                    :: !failures;
        printf "%-26s %8s %8s %8s  CRASH: %s\n" site "-" "FAIL" "-" msg;
        rows :=
          Json.Obj
            [ ("engine", Json.Str "milp"); ("site", Json.Str site);
              ("ok", Json.Bool false); ("crash", Json.Str msg) ]
          :: !rows
      | Ok (res, pl) ->
        let errors, _, _ =
          Fp_check.Diagnostic.count (Fp_check.Certify.placement nl pl)
        in
        let degs = List.map snd res.Augment.degradations in
        let ok =
          errors = 0 && injected > 0 && degs <> [] && not res.Augment.interrupted
        in
        if not ok then
          failures :=
            Printf.sprintf "%s: injected=%d certify_errors=%d degradations=%d"
              site injected errors (List.length degs)
            :: !failures;
        printf "%-26s %8d %8s %8d  %s\n" site injected
          (if errors = 0 then "pass" else "FAIL")
          (List.length degs)
          (String.concat "; "
             (List.sort_uniq compare (List.map Degradation.to_string degs)));
        rows :=
          Json.Obj
            ([
              ("engine", Json.Str "milp");
              ("site", Json.Str site);
              ("injections", Json.Int injected);
              ("certified", Json.Bool (errors = 0));
              ( "degradations",
                Json.List
                  (List.map (fun d -> Json.Str (Degradation.to_string d)) degs)
              );
              ("retries",
               Json.Int (sum_steps (fun s -> s.Augment.retries) res.Augment.steps));
              ("ok", Json.Bool ok);
            ]
            @ formulation_fields config res.Augment.steps)
          :: !rows)
    (Fp_util.Fault.sites ());
  write_json "fault_matrix"
    [
      ("k", Json.Int (Netlist.num_modules nl));
      ("rows", Json.List (List.rev !rows));
    ];
  match !failures with
  | [] -> printf "\nfault matrix: all %d sites pass\n" (List.length (Fp_util.Fault.sites ()))
  | fs ->
    printf "\nfault matrix FAILURES:\n";
    List.iter (fun f -> printf "  %s\n" f) fs;
    exit Fp_core.Degradation.exit_error

(* --------------------------------------------------------------------- *)
(* Portfolio: race the three engines on ami33, per-engine JSON records    *)
(* --------------------------------------------------------------------- *)

let portfolio_bench () =
  hr "Portfolio -- engine race on ami33 (milp, sa, project)";
  printf "(every engine solves the same scenario behind the Solver\n";
  printf " interface; the winner is the lowest objective among certified\n";
  printf " plans -- deterministic for a fixed seed under Best_certified)\n\n";
  let nl = Fp_data.Ami33.netlist () in
  let engines =
    [
      Fp_engine.Milp_engine.make ~config:(base_config ()) ();
      Fp_engine.Sa_engine.make ();
      Fp_engine.Project.solver;
    ]
  in
  let scenario = { Solver.default_scenario with Solver.seed = 1990 } in
  let report = Portfolio.race ~engines ~scenario nl in
  printf "%-10s %10s %12s %10s %10s %8s\n" "Engine" "Certified" "Objective"
    "Time (s)" "Work" "Degr";
  let rows =
    List.map
      (fun (e : Portfolio.entry) ->
        let st = e.Portfolio.outcome.Solver.stats in
        printf "%-10s %10s %12.1f %10.2f %10d %8d\n" e.Portfolio.solver_name
          (if st.Solver.certified then "yes" else "no")
          st.Solver.objective st.Solver.wall_time st.Solver.work
          (List.length st.Solver.degradations);
        Json.Obj
          [
            ("engine", Json.Str st.Solver.engine);
            ("certified", Json.Bool st.Solver.certified);
            ("objective", Json.Float st.Solver.objective);
            ("time_s", Json.Float st.Solver.wall_time);
            ("work", Json.Int st.Solver.work);
            ("complete", Json.Bool st.Solver.complete);
            ("ran", Json.Bool e.Portfolio.ran);
            ( "degradations",
              Json.List
                (List.map
                   (fun (_, d) -> Json.Str (Degradation.to_string d))
                   st.Solver.degradations) );
            ( "detail",
              Json.Obj
                (List.map (fun (k, v) -> (k, Json.Float v)) st.Solver.detail)
            );
          ])
      report.Portfolio.entries
  in
  let winner_name =
    match report.Portfolio.winner with
    | Some w -> w.Portfolio.solver_name
    | None -> "none"
  in
  printf "\nwinner: %s\n" winner_name;
  write_json "portfolio"
    [
      ("instance", Json.Str "ami33");
      ("winner", Json.Str winner_name);
      ("race_time_s", Json.Float report.Portfolio.wall_time);
      ("rows", Json.List rows);
    ]

(* --------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks: one Test.make per table + kernel ablations  *)
(* --------------------------------------------------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  (* Table 1 kernel: one full small-instance floorplan, tight budget. *)
  let t1_nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 8; seed = 77 }
  in
  let tight =
    { Augment.default_config with
      Augment.group_size = 3;
      milp = { Augment.default_config.Augment.milp with BB.node_limit = 120 } }
  in
  let table1_test =
    Test.make ~name:"table1/augment-8mod"
      (Staged.stage (fun () -> ignore (Augment.run ~config:tight t1_nl)))
  in
  (* Table 2 kernel: formulation build + warm start for one ami33 group
     (the per-step cost the objective/ordering sweep pays). *)
  let ami = Fp_data.Ami33.netlist () in
  let items =
    Array.of_list
      (Augment.items_of_group Augment.default_config ami [ 0; 1; 2; 3 ])
  in
  let sky = Skyline.create ~width:110. in
  let table2_test =
    Test.make ~name:"table2/ami33-step-model"
      (Staged.stage (fun () ->
           let built =
             Formulation.build ~chip_width:110. ~height_bound:160.
               (Array.to_list items)
           in
           let warm =
             Warm_start.place_group ~skyline:sky ~allow_rotation:true
               ~linearization:Formulation.Secant items
           in
           ignore
             (Formulation.assign_warm built
                (fun k -> warm.(k).Warm_start.envelope)
                ~rotated:(fun k -> warm.(k).Warm_start.rotated))))
  in
  (* Table 3 kernel: weighted global routing over a fixed placement. *)
  let t3_nl =
    Generator.generate
      { Generator.default_config with Generator.num_modules = 10; seed = 78 }
  in
  let t3_pl = (Augment.run ~config:tight t3_nl).Augment.placement in
  let table3_test =
    Test.make ~name:"table3/route-weighted"
      (Staged.stage (fun () ->
           ignore
             (Fp_route.Global_router.route
                ~algorithm:(Fp_route.Global_router.Weighted { penalty = 3. })
                t3_nl t3_pl)))
  in
  (* Kernel ablations: the simplex and the covering decomposition. *)
  let simplex_lp () =
    let p = Fp_lp.Lp_problem.create () in
    let n = 40 in
    let vars =
      Array.init n (fun i ->
          Fp_lp.Lp_problem.add_var p ~ub:10.
            ~obj:(float_of_int ((i mod 7) - 3))
            (Printf.sprintf "x%d" i))
    in
    for r = 0 to 59 do
      let terms =
        List.init 8 (fun k ->
            (float_of_int (((r + k) mod 5) + 1), vars.((r + (3 * k)) mod n)))
      in
      Fp_lp.Lp_problem.add_constr p terms Fp_lp.Lp_problem.Le
        (float_of_int ((r mod 17) + 10))
    done;
    p
  in
  let simplex_test =
    Test.make ~name:"ablation/simplex-60x40"
      (Staged.stage (fun () -> ignore (Fp_lp.Simplex.solve (simplex_lp ()))))
  in
  let big_sky =
    List.fold_left
      (fun sky i ->
        let x = float_of_int (i * 7 mod 193) in
        Skyline.add_rect sky
          (Rect.make ~x ~y:0.
             ~w:(float_of_int ((i mod 9) + 2))
             ~h:(float_of_int ((i mod 13) + 1))))
      (Skyline.create ~width:200.)
      (List.init 120 Fun.id)
  in
  let covering_test =
    Test.make ~name:"ablation/covering-120"
      (Staged.stage (fun () ->
           ignore (Fp_geometry.Covering.of_skyline big_sky)))
  in
  [ table1_test; table2_test; table3_test; simplex_test; covering_test ]

let run_bechamel () =
  hr "Bechamel micro-benchmarks";
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 50) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            printf "%-28s %14.0f ns/run%s\n" name est
              (match Analyze.OLS.r_square result with
              | Some r -> Printf.sprintf "  (r2 %.3f)" r
              | None -> "")
          | Some _ | None -> printf "%-28s (no estimate)\n" name)
        analyzed)
    (bechamel_tests ())

(* --------------------------------------------------------------------- *)

let () =
  let run_t1 = ref false and run_t2 = ref false and run_t3 = ref false in
  let run_figs = ref false and run_abl = ref false and run_bch = ref false in
  let run_chk = ref false and run_par = ref false and run_flt = ref false in
  let run_pf = ref false and run_form = ref false in
  let any = ref false in
  let speclist =
    [
      ( "--table",
        Arg.Int
          (fun n ->
            any := true;
            match n with
            | 1 -> run_t1 := true
            | 2 -> run_t2 := true
            | 3 -> run_t3 := true
            | _ -> raise (Arg.Bad "tables are 1, 2, 3")),
        "N  regenerate table N (1, 2 or 3)" );
      ( "--figures",
        Arg.Unit (fun () -> any := true; run_figs := true),
        "  regenerate figures 5 and 6" );
      ( "--ablation",
        Arg.Unit (fun () -> any := true; run_abl := true),
        "  run design-choice ablations" );
      ( "--bechamel",
        Arg.Unit (fun () -> any := true; run_bch := true),
        "  run Bechamel micro-benchmarks" );
      ( "--check",
        Arg.Unit (fun () -> any := true; run_chk := true),
        "  report lint findings + certification time per step" );
      ( "--ablation-parallel",
        Arg.Unit (fun () -> any := true; run_par := true),
        "  run only the domain-parallel scaling ablation" );
      ( "--ablation-formulation",
        Arg.Unit (fun () -> any := true; run_form := true),
        "  run only the formulation-strengthening ablation (basic/tight/cuts)" );
      ( "--portfolio",
        Arg.Unit (fun () -> any := true; run_pf := true),
        "  race the milp/sa/project engines and record per-engine rows" );
      ( "--faults",
        Arg.Unit (fun () -> any := true; run_flt := true),
        Printf.sprintf
          "  inject all %d catalogued fault sites (%s); exit 1 unless all \
           recover"
          (List.length Fp_util.Fault.builtin)
          (String.concat ", " (List.map fst Fp_util.Fault.builtin)) );
      ( "--jobs",
        Arg.Set_int jobs,
        "N  worker domains for every floorplan run (default 1)" );
      ("--quick", Arg.Set quick, "  reduced MILP budgets (fast, lower quality)");
      ( "--json",
        Arg.Set json,
        "  also write machine-readable BENCH_<exp>.json files to --out" );
      ( "--max-k",
        Arg.Set_int max_k,
        "N  restrict Table-1 / warm-start instances to K <= N (CI smoke)" );
      ("--out", Arg.Set_string out_dir, "DIR  directory for SVG outputs");
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "floorplan benchmark harness";
  if not !any then begin
    run_t1 := true;
    run_t2 := true;
    run_t3 := true;
    run_figs := true;
    run_abl := true;
    run_bch := true;
    run_chk := true;
    run_pf := true
  end;
  if !run_t1 then table1 ();
  if !run_t2 then table2 ();
  if !run_t3 then table3 ();
  if !run_figs then figures ();
  if !run_abl then ablations ();
  if !run_par && not !run_abl then ablation_parallel ();
  if !run_form && not !run_abl then ablation_formulation ();
  if !run_flt then fault_matrix ();
  if !run_pf then portfolio_bench ();
  if !run_chk then check_overhead ();
  if !run_bch then run_bechamel ();
  printf "\ndone.\n"
